package parallel_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/parallel"
)

// The tests drive a toy multi-actor model through the coordinator and
// through a single sequential engine, then require that the sequential
// run restricted to one shard's actors equals the parallel shard's own
// event log exactly — the same invariance the federation harness builds
// its byte-identity contract on. Cross-shard traffic uses the engine's
// post-tick dispatch class with explicit (pair, seq) keys, mirroring
// netsim's inter-cluster pipes.

type logEntry struct {
	at    sim.Time
	actor int
	tag   uint64
}

type delivery struct {
	arrival sim.Time
	key     uint64
	dst     int
	hops    int
	tag     uint64
}

// toyModel hosts nShards*perShard actors. In parallel mode each shard
// has its own engine and cross-shard sends queue in per-pair outboxes
// drained at barriers; in sequential mode one engine hosts everyone and
// cross-shard sends schedule directly — under the same post-tick keys,
// which is what makes the two runs comparable.
type toyModel struct {
	nShards   int
	perShard  int
	lookahead sim.Duration
	seqMode   bool

	engines []*sim.Engine
	rngs    []*sim.RNG   // per actor
	logs    [][]logEntry // per shard, appended only by its own worker
	outbox  [][]delivery // per src shard: flattened [dstShard] rows
	pipeSeq []uint64     // per src*nShards+dst, touched only by src's worker
}

func newToyModel(seed uint64, nShards, perShard int, lookahead sim.Duration, seqMode bool) *toyModel {
	m := &toyModel{
		nShards:   nShards,
		perShard:  perShard,
		lookahead: lookahead,
		seqMode:   seqMode,
		logs:      make([][]logEntry, nShards),
		pipeSeq:   make([]uint64, nShards*nShards),
	}
	if seqMode {
		m.engines = []*sim.Engine{sim.NewEngine()}
	} else {
		m.engines = make([]*sim.Engine, nShards)
		for i := range m.engines {
			m.engines[i] = sim.NewEngine()
		}
		m.outbox = make([][]delivery, nShards)
		for i := range m.outbox {
			m.outbox[i] = make([]delivery, 0, 16)
		}
	}
	for _, e := range m.engines {
		e.MaxEvents = 2_000_000
	}
	m.rngs = make([]*sim.RNG, nShards*perShard)
	for a := range m.rngs {
		m.rngs[a] = sim.NewRNG(seed + uint64(a)*0x9e3779b97f4a7c15)
	}
	return m
}

func (m *toyModel) shardOf(actor int) int { return actor / m.perShard }

func (m *toyModel) engineFor(actor int) *sim.Engine {
	if m.seqMode {
		return m.engines[0]
	}
	return m.engines[m.shardOf(actor)]
}

type toyEvent struct {
	m     *toyModel
	actor int
	hops  int
	tag   uint64
}

func runToyEvent(arg any) { ev := arg.(*toyEvent); ev.m.fire(ev.actor, ev.hops, ev.tag) }

// fire logs the event and chains bounded follow-up work: nothing, a
// same-shard event, or a cross-shard message whose arrival respects the
// lookahead — sometimes landing exactly on a window boundary.
func (m *toyModel) fire(actor, hops int, tag uint64) {
	shard := m.shardOf(actor)
	e := m.engineFor(actor)
	now := e.Now()
	m.logs[shard] = append(m.logs[shard], logEntry{at: now, actor: actor, tag: tag})
	if hops <= 0 {
		return
	}
	rng := m.rngs[actor]
	for c := rng.Intn(3); c > 0; c-- {
		switch rng.Intn(3) {
		case 0: // nothing
		case 1: // same-shard ordinary event, quantized to provoke ties
			dst := shard*m.perShard + rng.Intn(m.perShard)
			d := sim.Duration(rng.Intn(4)) * (m.lookahead / 2)
			if m.lookahead == 0 {
				d = sim.Duration(rng.Intn(4)) * sim.Millisecond
			}
			e.ScheduleCallAt(now.Add(d), runToyEvent,
				&toyEvent{m: m, actor: dst, hops: hops - 1, tag: tag*31 + 1})
		default: // cross-shard message
			if m.nShards == 1 {
				continue
			}
			dstShard := rng.Intn(m.nShards - 1)
			if dstShard >= shard {
				dstShard++
			}
			dst := dstShard*m.perShard + rng.Intn(m.perShard)
			extra := sim.Duration(0) // exactly on the window boundary
			if rng.Intn(2) == 0 {
				extra = sim.Duration(rng.Intn(3)) * (m.lookahead / 2)
			}
			arrival := now.Add(m.lookahead).Add(extra)
			pair := shard*m.nShards + dstShard
			m.pipeSeq[pair]++
			key := uint64(pair)<<40 | m.pipeSeq[pair]
			if m.seqMode {
				m.engines[0].SchedulePostCallAt(arrival, key, runToyEvent,
					&toyEvent{m: m, actor: dst, hops: hops - 1, tag: tag*31 + 2})
			} else {
				m.outbox[shard] = append(m.outbox[shard],
					delivery{arrival: arrival, key: key, dst: dst, hops: hops - 1, tag: tag*31 + 2})
			}
		}
	}
}

// seedWork schedules the initial events, identically in both modes.
func (m *toyModel) seedWork(rng *sim.RNG, n int) {
	for i := 0; i < n; i++ {
		actor := rng.Intn(len(m.rngs))
		at := sim.Time(rng.Intn(20)) * sim.Time(sim.Millisecond)
		m.engineFor(actor).ScheduleCallAt(at, runToyEvent,
			&toyEvent{m: m, actor: actor, hops: 2 + rng.Intn(3), tag: uint64(i)})
	}
}

// exchange drains every outbox row in deterministic order, checking the
// coordinator's injection invariant along the way.
func (m *toyModel) exchange(t *testing.T) func(sim.Time) error {
	return func(prevLimit sim.Time) error {
		for src := range m.outbox {
			for _, d := range m.outbox[src] {
				if d.arrival < prevLimit {
					return fmt.Errorf("injection at %v before window limit %v", d.arrival, prevLimit)
				}
				m.engines[m.shardOf(d.dst)].SchedulePostCallAt(d.arrival, d.key, runToyEvent,
					&toyEvent{m: m, actor: d.dst, hops: d.hops, tag: d.tag})
			}
			m.outbox[src] = m.outbox[src][:0]
		}
		return nil
	}
}

func shardsOf(engines []*sim.Engine) []parallel.Shard {
	shards := make([]parallel.Shard, len(engines))
	for i, e := range engines {
		shards[i] = e
	}
	return shards
}

// runDifferential runs one scenario in both modes across two horizon
// slices and compares the per-shard logs.
func runDifferential(t *testing.T, seed uint64, nShards, perShard int, lookahead sim.Duration, seeds int) {
	t.Helper()
	horizons := []sim.Time{sim.Time(50 * sim.Millisecond), sim.Time(sim.Hour)}

	seq := newToyModel(seed, nShards, perShard, lookahead, true)
	seq.seedWork(sim.NewRNG(seed^0xdead), seeds)
	for _, h := range horizons {
		if _, err := seq.engines[0].Run(h); err != nil {
			t.Fatal(err)
		}
	}

	par := newToyModel(seed, nShards, perShard, lookahead, false)
	par.seedWork(sim.NewRNG(seed^0xdead), seeds)
	coord := parallel.New(shardsOf(par.engines), lookahead, par.exchange(t), nil)
	for _, h := range horizons {
		if err := coord.Run(h); err != nil {
			t.Fatal(err)
		}
	}

	for s := 0; s < nShards; s++ {
		a, b := seq.logs[s], par.logs[s]
		if len(a) != len(b) {
			t.Fatalf("seed %#x shard %d: sequential fired %d events, parallel %d", seed, s, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %#x shard %d diverged at %d: seq %+v par %+v", seed, s, i, a[i], b[i])
			}
		}
	}
}

func TestCoordinatorMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		nShards, perShard int
		lookahead         sim.Duration
		seeds             int
	}{
		{2, 2, 4 * sim.Millisecond, 12},
		{3, 1, sim.Millisecond, 16},
		{4, 3, 500 * sim.Microsecond, 24},
		{1, 4, 2 * sim.Millisecond, 8}, // single shard: degenerate but legal
	} {
		for seed := uint64(1); seed <= 5; seed++ {
			runDifferential(t, seed*0x1234567, tc.nShards, tc.perShard, tc.lookahead, tc.seeds)
		}
	}
}

// TestCoordinatorZeroLookaheadFallsBack pins the degenerate-topology
// contract: zero lookahead returns ErrNoLookahead immediately — no
// deadlock, no shard touched — and the caller's sequential fallback
// completes the same workload.
func TestCoordinatorZeroLookaheadFallsBack(t *testing.T) {
	par := newToyModel(7, 2, 2, 0, false)
	par.seedWork(sim.NewRNG(7^0xdead), 8)
	pending := par.engines[0].Len() + par.engines[1].Len()
	coord := parallel.New(shardsOf(par.engines), 0, par.exchange(t), nil)
	err := coord.Run(sim.Time(sim.Hour))
	if !errors.Is(err, parallel.ErrNoLookahead) {
		t.Fatalf("zero lookahead returned %v, want ErrNoLookahead", err)
	}
	if got := par.engines[0].Len() + par.engines[1].Len(); got != pending {
		t.Fatalf("zero-lookahead Run touched shards: %d pending, was %d", got, pending)
	}
	if coord.Windows != 0 {
		t.Fatalf("zero-lookahead Run completed %d windows", coord.Windows)
	}
	// The fallback: the same workload on one engine drains fine.
	seq := newToyModel(7, 2, 2, 0, true)
	seq.seedWork(sim.NewRNG(7^0xdead), 8)
	if _, err := seq.engines[0].RunAll(); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorEmptyAndCheck covers the empty-queue exit and the
// barrier check hook aborting a run.
func TestCoordinatorEmptyAndCheck(t *testing.T) {
	e1, e2 := sim.NewEngine(), sim.NewEngine()
	coord := parallel.New([]parallel.Shard{e1, e2}, sim.Millisecond, nil, nil)
	if err := coord.Run(sim.Time(sim.Hour)); err != nil {
		t.Fatal(err)
	}
	if coord.Windows != 0 {
		t.Fatalf("empty run completed %d windows", coord.Windows)
	}

	boom := errors.New("violation")
	e1.ScheduleCall(sim.Millisecond, func(any) {}, nil)
	e1.ScheduleCall(sim.Hour, func(any) {}, nil)
	calls := 0
	coord = parallel.New([]parallel.Shard{e1, e2}, sim.Millisecond, nil, func() error {
		calls++
		return boom
	})
	if err := coord.Run(sim.Time(sim.Hour)); !errors.Is(err, boom) {
		t.Fatalf("check error not propagated: %v", err)
	}
	if calls != 1 {
		t.Fatalf("check ran %d times, want 1 (abort after first window)", calls)
	}
}

// FuzzShardBarrier fuzzes the coordinator against the sequential
// reference across random lookahead values, cross-shard bursts landing
// exactly on window boundaries (the toy model aims half its messages at
// arrival == send + lookahead) and degenerate zero-lookahead
// topologies, which must fall back with ErrNoLookahead rather than
// deadlock — the shard-level mirror of PR 3's ladder-vs-heap fuzz.
func FuzzShardBarrier(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(2), uint16(4000))
	f.Add(uint64(2), uint8(4), uint8(1), uint16(500))
	f.Add(uint64(3), uint8(3), uint8(3), uint16(1))
	f.Add(uint64(4), uint8(8), uint8(2), uint16(0)) // zero lookahead
	f.Add(uint64(5), uint8(1), uint8(3), uint16(250))
	f.Fuzz(func(t *testing.T, seed uint64, nShards, perShard uint8, lookaheadUs uint16) {
		ns := int(nShards)%8 + 1
		ps := int(perShard)%4 + 1
		lookahead := sim.Duration(lookaheadUs) * sim.Microsecond
		if lookahead == 0 {
			par := newToyModel(seed, ns, ps, 0, false)
			par.seedWork(sim.NewRNG(seed^0xdead), 8)
			coord := parallel.New(shardsOf(par.engines), 0, par.exchange(t), nil)
			if err := coord.Run(sim.Time(sim.Hour)); !errors.Is(err, parallel.ErrNoLookahead) {
				t.Fatalf("zero lookahead returned %v, want ErrNoLookahead", err)
			}
			return
		}
		runDifferential(t, seed, ns, ps, lookahead, 10)
	})
}
