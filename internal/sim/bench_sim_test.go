package sim

import "testing"

// Micro-benchmarks of the DES substrate.

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var tick Handler
	n := 0
	tick = func(e *Engine) {
		n++
		if n < b.N {
			e.Schedule(Millisecond, tick)
		}
	}
	e.Schedule(Millisecond, tick)
	b.ResetTimer()
	if _, err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEnginePushPop measures one schedule+fire cycle — the pure
// heap cost every simulation event pays — with allocation tracking.
func BenchmarkEnginePushPop(b *testing.B) {
	e := NewEngine()
	fn := func(*Engine) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Microsecond, fn)
		e.Step()
	}
}

// BenchmarkEnginePushPopDeep measures push/pop against a standing queue
// of 4096 pending events (heap depth 12), the registry's typical load.
func BenchmarkEnginePushPopDeep(b *testing.B) {
	e := NewEngine()
	fn := func(*Engine) {}
	for i := 0; i < 4096; i++ {
		e.Schedule(Hour+Duration(i)*Second, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Microsecond, fn)
		e.Step()
	}
}

func BenchmarkEngineMixedQueue(b *testing.B) {
	// A churning queue with cancellations: the protocol's timer-heavy
	// access pattern.
	b.ReportAllocs()
	e := NewEngine()
	refs := make([]EventRef, 0, 64)
	count := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs = append(refs, e.Schedule(Duration(i%100+1)*Microsecond, func(*Engine) { count++ }))
		if len(refs) == 64 {
			for j := 0; j < 32; j++ {
				refs[j].Cancel()
			}
			refs = refs[:0]
		}
		if i%128 == 127 {
			for k := 0; k < 64; k++ {
				e.Step()
			}
		}
	}
	_, _ = e.RunAll()
}

// BenchmarkEnginePushPopLadder measures one schedule+fire cycle against
// each tier of the ladder queue. "near" schedules inside the bucket
// window (the network-delivery pattern that dominates real runs, O(1)
// bucket append); "far" schedules beyond the window, paying the spill
// heap plus a window jump per event (the worst case); "standing" keeps
// 4096 far-future events pending while cycling near events, the
// steady-state shape of a big federation (timers far, deliveries near).
func BenchmarkEnginePushPopLadder(b *testing.B) {
	fn := func(*Engine) {}
	b.Run("near", func(b *testing.B) {
		e := NewEngine()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Schedule(Millisecond, fn)
			e.Step()
		}
	})
	b.Run("far", func(b *testing.B) {
		e := NewEngine()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Schedule(Second, fn) // beyond the window: far heap + refill
			e.Step()
		}
	})
	b.Run("standing", func(b *testing.B) {
		e := NewEngine()
		for i := 0; i < 4096; i++ {
			e.Schedule(24*Hour+Duration(i)*Second, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(Millisecond, fn)
			e.Step()
		}
	})
}

func BenchmarkRNGExp(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	var sink Duration
	for i := 0; i < b.N; i++ {
		sink += r.Exp(30 * Minute)
	}
	_ = sink
}

func BenchmarkSummaryObserve(b *testing.B) {
	var s Summary
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i % 1000))
	}
}

// BenchmarkOpenLoopArrivals prices the open-loop latency pipeline at
// heavy-traffic scale: one iteration draws 2^20 Poisson arrivals,
// observes a latency per arrival into the log-bucketed histogram and
// reads the p50/p99/p999 the matrix reports. The benchguard gate on
// allocs/op is the fixed-memory contract: the histogram allocates
// O(occupied buckets), so allocations stay flat in the arrival count —
// an implementation that keeps per-sample state regresses by four
// orders of magnitude here.
func BenchmarkOpenLoopArrivals(b *testing.B) {
	const arrivals = 1 << 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRNG(uint64(i + 1))
		var h Histogram
		var at Duration
		for k := 0; k < arrivals; k++ {
			at += r.Exp(30 * Millisecond)
			// A latency shaped like the stable-delivery wait: commit-
			// period phase plus a link-scale tail.
			lat := float64(at%(5*Minute))/float64(Second) + r.Float64()
			h.Observe(lat)
		}
		if h.N() != arrivals {
			b.Fatal("lost samples")
		}
		if h.Quantile(0.5) <= 0 || h.Quantile(0.999) <= 0 {
			b.Fatal("bad quantiles")
		}
	}
	b.ReportMetric(arrivals, "arrivals/op")
}
