package sim

import (
	"math"
	"strconv"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded through splitmix64). Each simulated entity gets
// its own named stream so adding a consumer never perturbs the draws of
// another — the property that keeps experiments reproducible as the
// simulator grows.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Stream derives an independent child generator from a label. Streams
// with distinct labels are statistically independent.
func (r *RNG) Stream(label string) *RNG {
	h := fnv64a(label)
	return NewRNG(r.Uint64() ^ h ^ 0xa5a5a5a5deadbeef)
}

// StreamN derives an independent child generator from a label and index,
// e.g. one stream per node. It hashes exactly the bytes of
// label + "/" + decimal(n) without allocating, so the derived stream is
// identical to Stream(fmt.Sprintf("%s/%d", label, n)).
func (r *RNG) StreamN(label string, n int) *RNG {
	var buf [24]byte
	h := fnv64a(label)
	h = fnv64aBytes(h, buf[:0], '/')
	h = fnv64aBytes(h, strconv.AppendInt(buf[:0], int64(n), 10))
	return NewRNG(r.Uint64() ^ h ^ 0xa5a5a5a5deadbeef)
}

func fnv64a(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// fnv64aBytes folds more bytes into a running fnv-1a hash h.
func fnv64aBytes(h uint64, b []byte, extra ...byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	for _, c := range extra {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Float64 returns a uniform float in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // negligible modulo bias for our n
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed duration with the given mean.
// A mean >= Forever yields Forever (the event never happens).
func (r *RNG) Exp(mean Duration) Duration {
	if mean >= Forever {
		return Forever
	}
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := -math.Log(u) * float64(mean)
	if d >= float64(Forever) {
		return Forever
	}
	return Duration(d)
}

// Uniform returns a uniform duration in [lo, hi].
func (r *RNG) Uniform(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Uint64()%uint64(hi-lo+1))
}

// Normal returns a normally distributed float with the given mean and
// standard deviation (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Pick returns a uniformly random element index weighted by the weights
// slice; weights must be non-negative and not all zero.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("sim: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("sim: Pick with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
