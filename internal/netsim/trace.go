package netsim

import (
	"bufio"
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Trace-driven links: instead of a static (latency, jitter) pair, an
// inter-cluster link replays a measured schedule of (latency, jitter,
// loss) samples — the shape of real mobile-broadband paths, whose
// characteristics drift over minutes, not the milliseconds a static
// model assumes. The schedule rides the existing Perturber plumbing:
// the topology's inter links carry the trace's minimum latency (so the
// sharded runner's conservative lookahead stays positive) and the
// TracePerturber adds the current segment's surplus, jitter draw and
// loss-retransmission delay on top. Perturbed messages always deliver
// standalone, so batched and unbatched trace runs are identical by
// construction.

// TraceSample is one measured segment of a link trace: it applies from
// At until the next sample's At (the last segment extends by the width
// of its predecessor, and the whole trace then loops).
type TraceSample struct {
	At      sim.Duration // offset from trace start
	Latency sim.Duration // one-way latency during the segment
	Jitter  sim.Duration // per-message jitter bound during the segment
	Loss    float64      // per-attempt loss probability in [0, 1)
}

// LinkTrace is a parsed, validated link schedule.
type LinkTrace struct {
	samples []TraceSample
	period  sim.Duration
	minLat  sim.Duration
}

// traceLine is the JSONL wire form of one sample: times in
// milliseconds, loss as a fraction.
type traceLine struct {
	TMs       float64 `json:"t_ms"`
	LatencyMs float64 `json:"latency_ms"`
	JitterMs  float64 `json:"jitter_ms"`
	Loss      float64 `json:"loss"`
}

// NewLinkTrace validates a sample schedule: samples must start at
// offset 0 and strictly increase, latencies must be positive, loss
// stays below 1 (a loss-1 segment would retransmit forever).
func NewLinkTrace(samples []TraceSample) (*LinkTrace, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("netsim: empty link trace")
	}
	if samples[0].At != 0 {
		return nil, fmt.Errorf("netsim: link trace must start at t=0, got %v", samples[0].At)
	}
	minLat := samples[0].Latency
	for i, s := range samples {
		if i > 0 && s.At <= samples[i-1].At {
			return nil, fmt.Errorf("netsim: link trace sample %d at %v does not advance past %v", i, s.At, samples[i-1].At)
		}
		if s.Latency <= 0 {
			return nil, fmt.Errorf("netsim: link trace sample %d has non-positive latency %v", i, s.Latency)
		}
		if s.Jitter < 0 {
			return nil, fmt.Errorf("netsim: link trace sample %d has negative jitter %v", i, s.Jitter)
		}
		if s.Loss < 0 || s.Loss >= 1 {
			return nil, fmt.Errorf("netsim: link trace sample %d loss %v outside [0, 1)", i, s.Loss)
		}
		if s.Latency < minLat {
			minLat = s.Latency
		}
	}
	period := samples[len(samples)-1].At
	if len(samples) > 1 {
		period += samples[len(samples)-1].At - samples[len(samples)-2].At
	} else {
		period = sim.Second // single-sample trace: constant conditions
	}
	return &LinkTrace{
		samples: append([]TraceSample(nil), samples...),
		period:  period,
		minLat:  minLat,
	}, nil
}

// ParseTrace reads a JSONL trace: one {"t_ms", "latency_ms",
// "jitter_ms", "loss"} object per line, blank lines and #-comment
// lines skipped.
func ParseTrace(r io.Reader) (*LinkTrace, error) {
	var samples []TraceSample
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var tl traceLine
		if err := json.Unmarshal(line, &tl); err != nil {
			return nil, fmt.Errorf("netsim: trace line %d: %w", lineNo, err)
		}
		samples = append(samples, TraceSample{
			At:      sim.Duration(tl.TMs * float64(sim.Millisecond)),
			Latency: sim.Duration(tl.LatencyMs * float64(sim.Millisecond)),
			Jitter:  sim.Duration(tl.JitterMs * float64(sim.Millisecond)),
			Loss:    tl.Loss,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netsim: reading trace: %w", err)
	}
	return NewLinkTrace(samples)
}

// Len returns the number of samples.
func (t *LinkTrace) Len() int { return len(t.samples) }

// Period returns the loop length of the trace.
func (t *LinkTrace) Period() sim.Duration { return t.period }

// MinLatency returns the smallest segment latency — the static
// latency the topology's inter links must declare so the perturber's
// surplus is never negative (and the sharded lookahead stays positive).
func (t *LinkTrace) MinLatency() sim.Duration { return t.minLat }

// SampleAt returns the segment in effect at simulation time at; the
// trace loops past its period.
func (t *LinkTrace) SampleAt(at sim.Time) TraceSample {
	phase := sim.Duration(at) % t.period
	// Step-function lookup: the traces in play have a handful of
	// segments, so a linear scan beats a binary search's branching.
	cur := t.samples[0]
	for _, s := range t.samples[1:] {
		if s.At > phase {
			break
		}
		cur = s
	}
	return cur
}

// mobileBroadbandJSONL is the checked-in fixture: a repeating
// mobile-broadband-like schedule (tens-of-ms latency swings, bursty
// jitter, occasional loss) in the JSONL schema ParseTrace reads.
//
//go:embed testdata/mobile_broadband.jsonl
var mobileBroadbandJSONL string

var (
	defaultTraceOnce sync.Once
	defaultTrace     *LinkTrace
)

// DefaultTrace returns the embedded mobile-broadband fixture trace.
func DefaultTrace() *LinkTrace {
	defaultTraceOnce.Do(func() {
		t, err := ParseTrace(strings.NewReader(mobileBroadbandJSONL))
		if err != nil {
			panic(fmt.Sprintf("netsim: embedded trace fixture invalid: %v", err))
		}
		defaultTrace = t
	})
	return defaultTrace
}

// TracePerturber replays a LinkTrace over every inter-cluster link: on
// top of the link's static latency (the trace minimum) it adds the
// current segment's latency surplus, a jitter draw and a geometric
// loss-retransmission delay. Randomness comes from per-directed-pipe
// streams derived purely from (seed, slot) — the same discipline as
// netsim's slot-keyed jitter — so the draws a pipe sees depend only on
// its own traffic order and a sharded run replays a sequential run
// exactly. Every inter message reports perturbed, which routes it off
// the batch path: batched and unbatched trace runs are identical.
type TracePerturber struct {
	trace *LinkTrace
	fed   *topology.Federation
	now   func() sim.Time
	seed  uint64
	nc    int
	slots []*sim.RNG // by src*nClusters+dst, lazily created

	// Retransmits, when non-nil, counts simulated loss retransmissions.
	Retransmits *sim.Counter
}

// traceRetryCap bounds the retransmissions of one message; with the
// validated loss < 1 the geometric tail beyond 16 tries is ~0.
const traceRetryCap = 16

// NewTracePerturber builds the perturber for one run. seed must be the
// run seed (shards pass the same one, which is what keeps them
// byte-identical) and now the owning engine's clock.
func NewTracePerturber(trace *LinkTrace, fed *topology.Federation, seed uint64, now func() sim.Time) *TracePerturber {
	nc := fed.NumClusters()
	return &TracePerturber{
		trace: trace,
		fed:   fed,
		now:   now,
		seed:  seed,
		nc:    nc,
		slots: make([]*sim.RNG, nc*nc),
	}
}

// slotRNG returns (creating on first use) the directed pipe's stream.
// The 3<<32 tag keeps it disjoint from netsim's intra (1<<32) and
// inter (2<<32) jitter streams under the same seed.
func (p *TracePerturber) slotRNG(slot int) *sim.RNG {
	if r := p.slots[slot]; r != nil {
		return r
	}
	tag := 3<<32 | uint64(slot)
	r := sim.NewRNG(p.seed + tag*0x9e3779b97f4a7c15)
	p.slots[slot] = r
	return r
}

// Perturb implements Perturber. Intra-cluster traffic is untouched
// (the trace models the wide-area path between clusters).
func (p *TracePerturber) Perturb(m Message, intra bool, envelope sim.Duration) (Perturbation, bool) {
	if intra {
		return Perturbation{}, false
	}
	seg := p.trace.SampleAt(p.now())
	extra := seg.Latency - p.fed.InterLink(m.Src.Cluster, m.Dst.Cluster).Latency
	if extra < 0 {
		extra = 0
	}
	slot := int(m.Src.Cluster)*p.nc + int(m.Dst.Cluster)
	r := p.slotRNG(slot)
	if seg.Jitter > 0 {
		extra += r.Uniform(0, seg.Jitter)
	}
	if seg.Loss > 0 {
		// Loss on a reliable transport shows up as retransmission delay,
		// never as an actual drop (the protocol assumes a loss-free
		// network, and the harness's message-completeness invariant
		// holds it to that): each lost attempt costs one RTT-scale
		// timeout before the retry.
		rto := 2*seg.Latency + seg.Jitter
		for try := 0; try < traceRetryCap && r.Float64() < seg.Loss; try++ {
			extra += rto
			if p.Retransmits != nil {
				p.Retransmits.Inc()
			}
		}
	}
	return Perturbation{Extra: extra}, true
}
