// Package netsim models the federation's network inside the discrete
// event simulation: reliable, loss-free delivery (the paper's network
// assumption) with per-link latency, bandwidth serialization and FIFO
// queueing. It corresponds to the "Network" thread of the paper's
// C++SIM simulator.
//
// # The batched wire
//
// Inter-cluster deliveries are coalesced per directed cluster-pair
// pipe: messages whose arrival lands on the same engine tick join one
// pipeBatch instead of each scheduling its own event. The framing is
// in-memory — a batch is the members' Message values in FIFO (append)
// order plus one scheduled fire per member — so a batch costs one
// event-payload box for the whole tick instead of one per message,
// and the piggyback DeltaCodec decodes the members in one pass at
// pipe exit.
//
// The FIFO-unpack contract: every member keeps its own
// (arrival, pipe-sequence) position in the global event order, fires
// exactly where its unbatched delivery would have, and unpacks in
// append order — so batched and unbatched runs are byte-identical,
// which the differential suites in internal/experiments pin against
// the matrix goldens (DisableBatching / Config.UnbatchedWire is the
// per-message reference wire).
//
// Buffer ownership: a pipeBatch owns its items slice. A fired
// member's Message is copied out and its slot cleared before the
// handler runs; when the cursor exhausts the batch it returns to the
// Network's free list and the same backing storage may be handed to a
// new batch — so neither handlers nor perturbation hooks may retain a
// pointer into a batch. Chaos perturbation routes affected messages
// off the batch path entirely (they deliver standalone); unperturbed
// members stay batched, and the differential suites prove the split
// leaves the observable run untouched.
package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind tags a message for accounting: the paper reports application and
// protocol message counts separately.
type Kind int

// Message kinds.
const (
	KindApp   Kind = iota // application payload
	KindProto             // checkpointing-protocol control message
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindApp:
		return "app"
	case KindProto:
		return "proto"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is one network message in flight.
type Message struct {
	ID      uint64
	Src     topology.NodeID
	Dst     topology.NodeID
	Kind    Kind
	Size    int // bytes, including protocol piggybacking
	Payload any
}

// Handler receives delivered messages at a node.
type Handler func(m Message)

// Serialization resources: intra-cluster traffic serializes at the
// sender's NIC (one slot per node ordinal); inter-cluster traffic
// shares one directed pipe per cluster pair (the LAN/WAN uplink, one
// slot per src*nClusters+dst). Flat slices replace the struct-keyed
// maps the seed used — link lookups are on the per-message hot path.

// Accounting events. Counter names are fixed at these constants so the
// per-message path never builds key strings (see count).
const (
	evSent = iota
	evDelivered
	evDroppedSrcDown
	evDroppedDstDown
	evDroppedInjected
	numEvents
)

var eventNames = [numEvents]string{
	evSent:            "net.sent",
	evDelivered:       "net.delivered",
	evDroppedSrcDown:  "net.dropped.src_down",
	evDroppedDstDown:  "net.dropped.dst_down",
	evDroppedInjected: "net.dropped.injected",
}

// Network simulates the federation fabric. All methods must be called
// from within the simulation goroutine (event handlers).
type Network struct {
	engine *sim.Engine
	fed    *topology.Federation
	ix     topology.NodeIndex
	stats  *sim.Stats
	tracer *sim.Tracer
	// Indexed by node ordinal.
	handlers  []Handler
	busyIntra []sim.Time
	lastIntra []sim.Time // latest scheduled arrival, for FIFO under jitter
	down      []bool
	// Indexed by src*nClusters+dst.
	busyInter []sim.Time
	lastInter []sim.Time
	// pipeSeq numbers every delivery scheduled through a directed
	// cluster-pair pipe (duplicates included). Combined with the pair
	// index it forms the post-tick dispatch key that makes same-tick
	// inter-cluster delivery order a pure function of the wire content —
	// the property that lets a sharded run interleave cross-shard
	// deliveries exactly like the sequential reference.
	pipeSeq []uint64
	nextID  uint64
	rng     *sim.RNG // jitter draws; nil disables jitter
	// Slot-keyed jitter mode: draws come from a lazily created per-slot
	// stream derived purely from (jitterBase, slot), so the sequence a
	// slot sees depends only on its own traffic order — identical under
	// any sharding of the federation. Enabled by SetSlotJitter; the
	// default shared-stream mode is kept bit-for-bit for sequential runs.
	slotJitter  bool
	jitterBase  uint64
	jitterIntra []*sim.RNG // by node ordinal
	jitterInter []*sim.RNG // by src*nClusters+dst

	nClusters int
	// deliverFn is the closure-free delivery handler, bound once so
	// Send allocates no closure per message.
	deliverFn func(any)
	// msgFree recycles the in-flight Message boxes handed to the event
	// engine: acquired in Send, released as soon as delivery fires.
	msgFree []*Message

	// Batched pipe deliveries: same-tick messages on one directed
	// cluster-pair pipe coalesce into a pipeBatch — one engine slot and
	// one slice of in-flight messages instead of one scheduled event and
	// one pooled box each. openBatch[slot] is the batch still accepting
	// members, valid only while openTick[slot] equals the engine clock
	// (all batch members are appended within one tick; arrivals are
	// strictly later, so a firing batch is never still open). batchFn is
	// the member-delivery trampoline, bound once.
	openBatch []*pipeBatch
	openTick  []sim.Time
	batchFree []*pipeBatch
	batchFn   func(any)
	noBatch   bool

	// Cached counter pointers, resolved on first use so the set of
	// registered counters stays exactly what a run actually touched
	// (identical Stats output to building keys per call).
	evTotal   [numEvents]*sim.Counter
	evKind    [numEvents][numKinds]*sim.Counter
	evPair    [numEvents][numKinds][]*sim.Counter // src*nClusters+dst
	bytesKind [numKinds]*sim.Counter

	// DropInterCluster, when non-nil, lets tests inject partitions: a
	// true return drops the message silently. The HC3I paper assumes a
	// reliable network, so nothing in the protocol path sets this; it
	// exists to verify that our harness notices violated assumptions.
	// Injected drops bypass the pipe (and PipeExit), so they must not
	// be combined with delta-encoded piggybacks (transitive runs).
	DropInterCluster func(m Message) bool

	// PipeExit, when non-nil, observes every inter-cluster message at
	// the exit of its cluster-pair pipe, in pipe (FIFO) order, exactly
	// once — including messages then dropped because the destination
	// node is down: the pipe itself is loss-free, only the endpoint
	// loses. The federation harness hooks the delta-piggyback decoder
	// here, which is what keeps encoder and decoder in perfect sync
	// across node failures.
	PipeExit func(src, dst topology.NodeID, payload any)

	// CrossRoute, when non-nil, is consulted for every inter-cluster
	// message after its arrival time and pipe dispatch key are fixed and
	// its send is counted. Returning true claims the message: the shard
	// harness carries it to the engine owning the destination cluster,
	// which injects it through DeliverCrossAt at a window barrier.
	// Returning false (same-shard destination) schedules it locally.
	CrossRoute func(m Message, arrival sim.Time, key uint64) bool

	// Perturb, when non-nil, lets an adversarial-schedule harness
	// (internal/chaos) adjust every message's delivery: extra delay
	// within the link's declared jitter envelope, release from the
	// per-slot FIFO clamp (legal for inter-cluster traffic — the paper
	// only assumes "an arbitrary but finite laps of time"), and
	// duplicate deliveries where the wire contract permits. Nil (every
	// non-chaos run) leaves the network bit-for-bit as before.
	Perturb Perturber
}

// Perturbation is one message's adversarial delivery adjustment.
type Perturbation struct {
	// Extra is added to the nominal arrival time. The perturber keeps
	// it inside the envelope it considers legal for the link.
	Extra sim.Duration
	// Unclamped skips the per-slot FIFO arrival clamp for this message
	// (and leaves the slot's clamp state untouched), so it may overtake
	// or be overtaken by its pipe neighbours.
	Unclamped bool
	// Duplicate, when > 0, delivers a second copy this much after the
	// first arrival.
	Duplicate sim.Duration
	// DupPayload, when non-nil, is the payload of the duplicate
	// delivery. Perturbers must supply a deep copy for pooled message
	// boxes (the harness reclaims a box after its first delivery); nil
	// reuses the original payload, which is only safe for value
	// messages.
	DupPayload any
}

// Perturber decides the adversarial schedule. Perturb sees every
// message once, at send time, in deterministic simulation order —
// perturbers draw all randomness from their own seeded stream, so a
// chaos run replays exactly from its seed. envelope is the link's
// declared jitter bound (zero on jitter-free links).
type Perturber interface {
	Perturb(m Message, intra bool, envelope sim.Duration) (Perturbation, bool)
}

// New returns a network for the federation.
func New(e *sim.Engine, fed *topology.Federation, stats *sim.Stats, tracer *sim.Tracer) *Network {
	ix := fed.Index()
	nc := fed.NumClusters()
	n := &Network{
		engine:    e,
		fed:       fed,
		ix:        ix,
		stats:     stats,
		tracer:    tracer,
		handlers:  make([]Handler, ix.Len()),
		busyIntra: make([]sim.Time, ix.Len()),
		lastIntra: make([]sim.Time, ix.Len()),
		down:      make([]bool, ix.Len()),
		busyInter: make([]sim.Time, nc*nc),
		lastInter: make([]sim.Time, nc*nc),
		pipeSeq:   make([]uint64, nc*nc),
		openBatch: make([]*pipeBatch, nc*nc),
		openTick:  make([]sim.Time, nc*nc),
		nClusters: nc,
	}
	n.deliverFn = n.deliverPooled
	n.batchFn = n.deliverBatched
	return n
}

// DisableBatching reverts inter-cluster scheduling to one engine event
// and one pooled box per message (the pre-batching wire). Runs are
// byte-identical either way — batch members keep their individual
// (arrival, pipe key) positions — and the differential suites re-prove
// it by diffing batched output against this reference.
func (n *Network) DisableBatching() { n.noBatch = true }

// pipeBatch is one batched group of deliveries on a directed
// cluster-pair pipe: the members' Message values in FIFO (append)
// order, consumed one per member fire through a cursor. Ownership: the
// batch owns its items slice; a fired member's Message is copied out
// and its slot cleared before the handler runs, and the batch returns
// to the pool when the cursor exhausts it — after which the Network may
// hand the same backing storage to a new batch, so nothing may retain a
// pointer into items.
type pipeBatch struct {
	slot  int
	items []Message
	next  int
	last  sim.Time // newest member's arrival: appends must not regress
	pb    sim.PostBatch
}

func (n *Network) allocBatch() *pipeBatch {
	if last := len(n.batchFree) - 1; last >= 0 {
		pb := n.batchFree[last]
		n.batchFree[last] = nil
		n.batchFree = n.batchFree[:last]
		pb.items = pb.items[:0]
		pb.next = 0
		return pb
	}
	return new(pipeBatch)
}

func (n *Network) releaseBatch(pb *pipeBatch) {
	n.batchFree = append(n.batchFree, pb)
}

// enqueueBatched schedules one inter-cluster delivery through the pipe's
// open batch, opening a fresh one when the previous batch is from an
// older tick or the arrival would regress below an already-appended
// member (possible only for barrier-injected cross-shard messages a
// chaos perturber released from the FIFO clamp). Fire order within a
// batch equals append order: arrivals are non-decreasing and same-tick
// members carry strictly increasing pipe keys.
func (n *Network) enqueueBatched(slot int, m Message, arrival sim.Time, key uint64) {
	now := n.engine.Now()
	if pb := n.openBatch[slot]; pb != nil && n.openTick[slot] == now && arrival >= pb.last {
		pb.items = append(pb.items, m)
		pb.last = arrival
		pb.pb.Add(arrival, key)
		return
	}
	pb := n.allocBatch()
	pb.slot = slot
	pb.items = append(pb.items, m)
	pb.last = arrival
	pb.pb = n.engine.NewPostBatch(n.batchFn, pb)
	pb.pb.Add(arrival, key)
	n.openBatch[slot] = pb
	n.openTick[slot] = now
}

// deliverBatched fires one batch member: pop the next message in FIFO
// order, recycle the batch once drained (clearing the open-batch pointer
// if it still refers to it), then deliver. Delivery runs after the
// release so sends it triggers can reuse the batch immediately — the
// member was copied out first.
func (n *Network) deliverBatched(arg any) {
	pb := arg.(*pipeBatch)
	m := pb.items[pb.next]
	pb.items[pb.next] = Message{}
	pb.next++
	if pb.next == len(pb.items) {
		if n.openBatch[pb.slot] == pb {
			n.openBatch[pb.slot] = nil
		}
		n.releaseBatch(pb)
	}
	n.deliver(m)
}

// SetRNG installs the random stream used for per-message jitter on
// links with a non-zero Jitter bound. Without it (or on jitter-free
// links, the paper's configuration) no draws happen, so existing runs
// are bit-for-bit unchanged.
func (n *Network) SetRNG(rng *sim.RNG) { n.rng = rng }

// SetSlotJitter switches jitter draws to slot-keyed streams derived
// purely from base: each serialization slot (sender NIC or directed
// cluster-pair pipe) gets its own stream on first use, so the draw a
// message sees depends only on its slot and that slot's traffic order,
// never on the global interleaving. Sharded runs need this — a shared
// stream would hand out draws in engine order, which differs per shard
// layout — and a sequential run with the same base reproduces a sharded
// run's jitter exactly.
func (n *Network) SetSlotJitter(base uint64) {
	n.slotJitter = true
	n.jitterBase = base
}

// jitterSlotRNG returns (creating on first use) the slot's jitter
// stream. Intra and inter slot spaces are disambiguated by the tag
// mixed into the seed.
func (n *Network) jitterSlotRNG(intra bool, slot int) *sim.RNG {
	var pool *[]*sim.RNG
	var tag uint64
	if intra {
		pool = &n.jitterIntra
		tag = 1<<32 | uint64(slot)
	} else {
		pool = &n.jitterInter
		tag = 2<<32 | uint64(slot)
	}
	if *pool == nil {
		if intra {
			*pool = make([]*sim.RNG, n.ix.Len())
		} else {
			*pool = make([]*sim.RNG, n.nClusters*n.nClusters)
		}
	}
	if r := (*pool)[slot]; r != nil {
		return r
	}
	r := sim.NewRNG(n.jitterBase + tag*0x9e3779b97f4a7c15)
	(*pool)[slot] = r
	return r
}

// Register installs the delivery handler for a node. Each node must
// register exactly once before any traffic is sent to it.
func (n *Network) Register(id topology.NodeID, h Handler) {
	if !n.fed.Valid(id) {
		panic(fmt.Sprintf("netsim: register invalid node %v", id))
	}
	if n.handlers[n.ix.Ord(id)] != nil {
		panic(fmt.Sprintf("netsim: duplicate handler for %v", id))
	}
	n.handlers[n.ix.Ord(id)] = h
}

// SetDown marks a node failed (fail-stop) or repaired. Messages from a
// down node are refused; messages to a down node vanish (the sender's
// protocol recovers them through the rollback procedure, never the
// network).
func (n *Network) SetDown(id topology.NodeID, down bool) {
	n.down[n.ix.Ord(id)] = down
}

// Down reports whether a node is currently failed.
func (n *Network) Down(id topology.NodeID) bool { return n.down[n.ix.Ord(id)] }

// allocMsg takes a Message box from the free list (or allocates one).
func (n *Network) allocMsg() *Message {
	if last := len(n.msgFree) - 1; last >= 0 {
		m := n.msgFree[last]
		n.msgFree[last] = nil
		n.msgFree = n.msgFree[:last]
		return m
	}
	return new(Message)
}

// releaseMsg returns a Message box to the free list. The caller must
// have copied every field it still needs: the box is reused by the very
// next Send, including sends issued from inside the current delivery.
func (n *Network) releaseMsg(m *Message) {
	m.Payload = nil
	n.msgFree = append(n.msgFree, m)
}

// Send queues a message for delivery and returns its ID. Delivery time
// is max(now, link free) + transmit + latency; the link then stays busy
// until the end of serialization, giving FIFO order per link.
func (n *Network) Send(src, dst topology.NodeID, kind Kind, size int, payload any) uint64 {
	if !n.fed.Valid(src) || !n.fed.Valid(dst) {
		panic(fmt.Sprintf("netsim: send %v -> %v outside federation", src, dst))
	}
	if src == dst {
		panic("netsim: node sending to itself")
	}
	n.nextID++
	id := n.nextID
	if n.down[n.ix.Ord(src)] {
		// A failed node sends nothing (fail-stop assumption §2.1).
		n.count(evDroppedSrcDown, kind, src, dst, size)
		return id
	}
	if src.Cluster != dst.Cluster && n.DropInterCluster != nil &&
		n.DropInterCluster(Message{ID: id, Src: src, Dst: dst, Kind: kind, Size: size, Payload: payload}) {
		if n.PipeExit != nil {
			// An injected drop bypasses the pipe — and therefore the
			// delta-piggyback decoder hooked at PipeExit — which would
			// silently desynchronize the codec for the rest of the
			// run. Fail loudly instead: partition-injection tests must
			// run on the dense wire.
			panic("netsim: DropInterCluster cannot be combined with a PipeExit hook (delta-encoded piggybacks would desync)")
		}
		n.count(evDroppedInjected, kind, src, dst, size)
		return id
	}

	// Resolve the serialization slot: the sender's NIC for SAN traffic,
	// the directed cluster-pair pipe otherwise.
	var link topology.Link
	var busy, last []sim.Time
	var slot int
	if src.Cluster == dst.Cluster {
		link = n.fed.Clusters[src.Cluster].Intra
		busy, last = n.busyIntra, n.lastIntra
		slot = n.ix.Ord(src)
	} else {
		link = n.fed.InterLink(src.Cluster, dst.Cluster)
		busy, last = n.busyInter, n.lastInter
		slot = int(src.Cluster)*n.nClusters + int(dst.Cluster)
	}
	start := n.engine.Now()
	if free := busy[slot]; free > start {
		start = free
	}
	endSerial := start.Add(link.TransmitTime(size))
	busy[slot] = endSerial
	arrival := endSerial.Add(link.Latency)
	var pert Perturbation
	perturbed := false
	if n.Perturb != nil {
		pert, perturbed = n.Perturb.Perturb(
			Message{ID: id, Src: src, Dst: dst, Kind: kind, Size: size, Payload: payload},
			src.Cluster == dst.Cluster, link.Jitter)
	}
	if perturbed && pert.Extra > 0 {
		// Extra delay folds in before the clamp bookkeeping below, so
		// a clamped perturbation still records its true arrival and
		// the per-slot FIFO guarantee survives for later messages.
		arrival = arrival.Add(pert.Extra)
	}
	var jr *sim.RNG
	if link.Jitter > 0 {
		if n.slotJitter {
			jr = n.jitterSlotRNG(src.Cluster == dst.Cluster, slot)
		} else {
			jr = n.rng
		}
	}
	if jr != nil {
		// Per-message propagation jitter; arrivals never overtake an
		// earlier message on the same link (FIFO, like an in-order
		// transport over a jittery path) — unless the perturber
		// released this message from the clamp.
		arrival = arrival.Add(jr.Uniform(0, link.Jitter))
		if perturbed && pert.Unclamped {
			// Neither clamped nor advancing the slot's clamp state.
		} else {
			if prev := last[slot]; arrival < prev {
				arrival = prev
			}
			last[slot] = arrival
		}
	}

	n.count(evSent, kind, src, dst, size)
	if n.tracer.Enabled(sim.TraceAll) {
		n.tracer.Allf(src.String(), "send #%d %s %dB -> %v (arrives %v)", id, kind, size, dst, arrival)
	}

	msg := Message{ID: id, Src: src, Dst: dst, Kind: kind, Size: size, Payload: payload}
	inter := src.Cluster != dst.Cluster
	var key uint64
	if inter {
		key = n.nextPipeKey(slot)
		if n.CrossRoute != nil && n.CrossRoute(msg, arrival, key) {
			// Claimed by the shard owning the destination cluster. A chaos
			// duplicate crosses too, under its own pipe key.
			if perturbed && pert.Duplicate > 0 {
				dm := msg
				if pert.DupPayload != nil {
					dm.Payload = pert.DupPayload
				}
				n.CrossRoute(dm, arrival.Add(pert.Duplicate), n.nextPipeKey(slot))
			}
			return id
		}
	}
	if inter {
		// Inter-cluster deliveries dispatch in the post-tick class keyed
		// by (pair, pipeSeq): at one timestamp they fire after every
		// ordinary event, in an order determined by the wire content
		// alone — so a barrier-injected cross-shard delivery lands in
		// exactly the slot the sequential run gave it. Unperturbed
		// messages coalesce into the pipe's open batch; perturbed ones
		// stay standalone so the chaos layer's arrival rewrites can
		// never violate a batch's monotone-arrival contract.
		if n.noBatch || perturbed {
			m := n.allocMsg()
			*m = msg
			n.engine.SchedulePostCallAt(arrival, key, n.deliverFn, m)
		} else {
			n.enqueueBatched(slot, msg, arrival, key)
		}
	} else {
		m := n.allocMsg()
		*m = msg
		n.engine.ScheduleCallAt(arrival, n.deliverFn, m)
	}
	if perturbed && pert.Duplicate > 0 {
		d := n.allocMsg()
		*d = msg
		if pert.DupPayload != nil {
			d.Payload = pert.DupPayload
		}
		at := arrival.Add(pert.Duplicate)
		if inter {
			n.engine.SchedulePostCallAt(at, n.nextPipeKey(slot), n.deliverFn, d)
		} else {
			n.engine.ScheduleCallAt(at, n.deliverFn, d)
		}
	}
	return id
}

// pipeSeqBits is the width of the per-pipe sequence field inside a
// post-tick dispatch key; the pair index occupies the bits above it.
// 2^40 deliveries per pipe and 2^23 cluster pairs are far beyond any
// run this simulator performs.
const pipeSeqBits = 40

// nextPipeKey advances the directed pipe's delivery sequence and
// returns the post-tick dispatch key for the next delivery.
func (n *Network) nextPipeKey(slot int) uint64 {
	n.pipeSeq[slot]++
	return uint64(slot)<<pipeSeqBits | n.pipeSeq[slot]
}

// DeliverCrossAt injects a message handed over from another shard's
// network: it schedules delivery on this network's engine at the
// arrival time and post-tick key the sending shard computed. Called
// only at window barriers, with arrival at or beyond the window limit,
// so the destination engine has not yet passed the timestamp.
//
// Cross injections batch like local sends: the barrier drains a shard's
// outbox in order, so consecutive messages of one pipe land in one
// batch. A pipe's slot is keyed by the *source* cluster, which another
// shard owns — the destination network never locally sends on it — so
// cross batches and local batches can never interleave on a slot.
func (n *Network) DeliverCrossAt(m Message, arrival sim.Time, key uint64) {
	if n.noBatch {
		box := n.allocMsg()
		*box = m
		n.engine.SchedulePostCallAt(arrival, key, n.deliverFn, box)
		return
	}
	slot := int(m.Src.Cluster)*n.nClusters + int(m.Dst.Cluster)
	n.enqueueBatched(slot, m, arrival, key)
}

// deliverPooled is the event-engine entry point: it copies the pooled
// box out and releases it before running the handler, so sends issued
// during delivery can reuse it immediately.
func (n *Network) deliverPooled(arg any) {
	pm := arg.(*Message)
	m := *pm
	n.releaseMsg(pm)
	n.deliver(m)
}

func (n *Network) deliver(m Message) {
	if n.PipeExit != nil && m.Src.Cluster != m.Dst.Cluster {
		n.PipeExit(m.Src, m.Dst, m.Payload)
	}
	dst := n.ix.Ord(m.Dst)
	if n.down[dst] {
		// The destination died while the message was in flight.
		n.count(evDroppedDstDown, m.Kind, m.Src, m.Dst, m.Size)
		return
	}
	h := n.handlers[dst]
	if h == nil {
		panic(fmt.Sprintf("netsim: no handler for %v", m.Dst))
	}
	n.count(evDelivered, m.Kind, m.Src, m.Dst, m.Size)
	if n.tracer.Enabled(sim.TraceAll) {
		n.tracer.Allf(m.Dst.String(), "recv #%d %s %dB from %v", m.ID, m.Kind, m.Size, m.Src)
	}
	h(m)
}

// Broadcast sends the same payload from src to every other node of
// src's cluster, in node order (the 2PC "broadcast in its cluster").
func (n *Network) Broadcast(src topology.NodeID, kind Kind, size int, payload any) {
	for _, dst := range n.fed.Nodes(src.Cluster) {
		if dst != src {
			n.Send(src, dst, kind, size, payload)
		}
	}
}

// count increments the per-event counters (total, per kind, per
// cluster pair, plus sent bytes). Counter pointers are cached after the
// first touch, so the steady state builds no key strings; keys are
// composed lazily — exactly the set a per-call fmt.Sprintf would have
// registered, so Stats output is unchanged.
func (n *Network) count(ev int, kind Kind, src, dst topology.NodeID, size int) {
	if n.stats == nil {
		return
	}
	k := int(kind)
	if k < 0 || k >= int(numKinds) {
		panic(fmt.Sprintf("netsim: unknown kind %d", k))
	}
	c := n.evTotal[ev]
	if c == nil {
		c = n.stats.Counter(eventNames[ev])
		n.evTotal[ev] = c
	}
	c.Inc()
	ck := n.evKind[ev][k]
	if ck == nil {
		ck = n.stats.Counter(eventNames[ev] + "." + kind.String())
		n.evKind[ev][k] = ck
	}
	ck.Inc()
	pairs := n.evPair[ev][k]
	if pairs == nil {
		pairs = make([]*sim.Counter, n.nClusters*n.nClusters)
		n.evPair[ev][k] = pairs
	}
	idx := int(src.Cluster)*n.nClusters + int(dst.Cluster)
	cp := pairs[idx]
	if cp == nil {
		cp = n.stats.Counter(fmt.Sprintf("%s.%s.c%d.c%d", eventNames[ev], kind, src.Cluster, dst.Cluster))
		pairs[idx] = cp
	}
	cp.Inc()
	if ev == evSent {
		cb := n.bytesKind[k]
		if cb == nil {
			cb = n.stats.Counter("net.bytes." + kind.String())
			n.bytesKind[k] = cb
		}
		cb.Add(uint64(size))
	}
}

// Stats returns the registry used for accounting (may be nil).
func (n *Network) Stats() *sim.Stats { return n.stats }

// AppMessages returns how many application messages were sent from
// cluster a to cluster b, the quantity Table 1 of the paper reports.
func (n *Network) AppMessages(a, b topology.ClusterID) uint64 {
	if n.stats == nil {
		return 0
	}
	return n.stats.CounterValue(fmt.Sprintf("net.sent.app.c%d.c%d", a, b))
}
