// Package netsim models the federation's network inside the discrete
// event simulation: reliable, loss-free delivery (the paper's network
// assumption) with per-link latency, bandwidth serialization and FIFO
// queueing. It corresponds to the "Network" thread of the paper's
// C++SIM simulator.
package netsim

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind tags a message for accounting: the paper reports application and
// protocol message counts separately.
type Kind int

// Message kinds.
const (
	KindApp   Kind = iota // application payload
	KindProto             // checkpointing-protocol control message
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindApp:
		return "app"
	case KindProto:
		return "proto"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is one network message in flight.
type Message struct {
	ID      uint64
	Src     topology.NodeID
	Dst     topology.NodeID
	Kind    Kind
	Size    int // bytes, including protocol piggybacking
	Payload any
}

// Handler receives delivered messages at a node.
type Handler func(m Message)

// linkKey identifies a serialization resource. Intra-cluster traffic
// serializes at the sender's NIC; inter-cluster traffic shares one
// directed pipe per cluster pair (the LAN/WAN uplink).
type linkKey struct {
	intra      bool
	node       topology.NodeID    // for intra
	srcCluster topology.ClusterID // for inter
	dstCluster topology.ClusterID
}

// Network simulates the federation fabric. All methods must be called
// from within the simulation goroutine (event handlers).
type Network struct {
	engine   *sim.Engine
	fed      *topology.Federation
	stats    *sim.Stats
	tracer   *sim.Tracer
	handlers map[topology.NodeID]Handler
	busy     map[linkKey]sim.Time
	last     map[linkKey]sim.Time // latest scheduled arrival, for FIFO under jitter
	down     map[topology.NodeID]bool
	nextID   uint64
	rng      *sim.RNG // jitter draws; nil disables jitter

	// DropInterCluster, when non-nil, lets tests inject partitions: a
	// true return drops the message silently. The HC3I paper assumes a
	// reliable network, so nothing in the protocol path sets this; it
	// exists to verify that our harness notices violated assumptions.
	DropInterCluster func(m Message) bool
}

// New returns a network for the federation.
func New(e *sim.Engine, fed *topology.Federation, stats *sim.Stats, tracer *sim.Tracer) *Network {
	return &Network{
		engine:   e,
		fed:      fed,
		stats:    stats,
		tracer:   tracer,
		handlers: make(map[topology.NodeID]Handler),
		busy:     make(map[linkKey]sim.Time),
		last:     make(map[linkKey]sim.Time),
		down:     make(map[topology.NodeID]bool),
	}
}

// SetRNG installs the random stream used for per-message jitter on
// links with a non-zero Jitter bound. Without it (or on jitter-free
// links, the paper's configuration) no draws happen, so existing runs
// are bit-for-bit unchanged.
func (n *Network) SetRNG(rng *sim.RNG) { n.rng = rng }

// Register installs the delivery handler for a node. Each node must
// register exactly once before any traffic is sent to it.
func (n *Network) Register(id topology.NodeID, h Handler) {
	if !n.fed.Valid(id) {
		panic(fmt.Sprintf("netsim: register invalid node %v", id))
	}
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate handler for %v", id))
	}
	n.handlers[id] = h
}

// SetDown marks a node failed (fail-stop) or repaired. Messages from a
// down node are refused; messages to a down node vanish (the sender's
// protocol recovers them through the rollback procedure, never the
// network).
func (n *Network) SetDown(id topology.NodeID, down bool) {
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// Down reports whether a node is currently failed.
func (n *Network) Down(id topology.NodeID) bool { return n.down[id] }

// Send queues a message for delivery and returns its ID. Delivery time
// is max(now, link free) + transmit + latency; the link then stays busy
// until the end of serialization, giving FIFO order per link.
func (n *Network) Send(src, dst topology.NodeID, kind Kind, size int, payload any) uint64 {
	if !n.fed.Valid(src) || !n.fed.Valid(dst) {
		panic(fmt.Sprintf("netsim: send %v -> %v outside federation", src, dst))
	}
	if src == dst {
		panic("netsim: node sending to itself")
	}
	n.nextID++
	m := Message{ID: n.nextID, Src: src, Dst: dst, Kind: kind, Size: size, Payload: payload}
	if n.down[src] {
		// A failed node sends nothing (fail-stop assumption §2.1).
		n.count("net.dropped.src_down", m)
		return m.ID
	}
	if src.Cluster != dst.Cluster && n.DropInterCluster != nil && n.DropInterCluster(m) {
		n.count("net.dropped.injected", m)
		return m.ID
	}

	link := n.fed.LinkBetween(src, dst)
	key := keyFor(src, dst)
	start := n.engine.Now()
	if free, ok := n.busy[key]; ok && free > start {
		start = free
	}
	endSerial := start.Add(link.TransmitTime(m.Size))
	n.busy[key] = endSerial
	arrival := endSerial.Add(link.Latency)
	if link.Jitter > 0 && n.rng != nil {
		// Per-message propagation jitter; arrivals never overtake an
		// earlier message on the same link (FIFO, like an in-order
		// transport over a jittery path).
		arrival = arrival.Add(n.rng.Uniform(0, link.Jitter))
		if prev := n.last[key]; arrival < prev {
			arrival = prev
		}
		n.last[key] = arrival
	}

	n.count("net.sent", m)
	n.tracer.Allf(src.String(), "send #%d %s %dB -> %v (arrives %v)", m.ID, m.Kind, m.Size, dst, arrival)

	n.engine.ScheduleAt(arrival, func(*sim.Engine) { n.deliver(m) })
	return m.ID
}

func keyFor(src, dst topology.NodeID) linkKey {
	if src.Cluster == dst.Cluster {
		return linkKey{intra: true, node: src}
	}
	return linkKey{srcCluster: src.Cluster, dstCluster: dst.Cluster}
}

func (n *Network) deliver(m Message) {
	if n.down[m.Dst] {
		// The destination died while the message was in flight.
		n.count("net.dropped.dst_down", m)
		return
	}
	h := n.handlers[m.Dst]
	if h == nil {
		panic(fmt.Sprintf("netsim: no handler for %v", m.Dst))
	}
	n.count("net.delivered", m)
	n.tracer.Allf(m.Dst.String(), "recv #%d %s %dB from %v", m.ID, m.Kind, m.Size, m.Src)
	h(m)
}

// Broadcast sends the same payload from src to every other node of
// src's cluster, in node order (the 2PC "broadcast in its cluster").
func (n *Network) Broadcast(src topology.NodeID, kind Kind, size int, payload any) {
	for _, dst := range n.fed.Nodes(src.Cluster) {
		if dst != src {
			n.Send(src, dst, kind, size, payload)
		}
	}
}

func (n *Network) count(event string, m Message) {
	if n.stats == nil {
		return
	}
	n.stats.Counter(event).Inc()
	n.stats.Counter(fmt.Sprintf("%s.%s", event, m.Kind)).Inc()
	n.stats.Counter(fmt.Sprintf("%s.%s.c%d.c%d", event, m.Kind, m.Src.Cluster, m.Dst.Cluster)).Inc()
	if event == "net.sent" {
		n.stats.Counter(fmt.Sprintf("net.bytes.%s", m.Kind)).Add(uint64(m.Size))
	}
}

// Stats returns the registry used for accounting (may be nil).
func (n *Network) Stats() *sim.Stats { return n.stats }

// AppMessages returns how many application messages were sent from
// cluster a to cluster b, the quantity Table 1 of the paper reports.
func (n *Network) AppMessages(a, b topology.ClusterID) uint64 {
	if n.stats == nil {
		return 0
	}
	return n.stats.CounterValue(fmt.Sprintf("net.sent.app.c%d.c%d", a, b))
}
