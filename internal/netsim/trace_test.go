package netsim

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestDefaultTraceFixture(t *testing.T) {
	tr := DefaultTrace()
	if tr.Len() != 10 {
		t.Fatalf("fixture samples = %d", tr.Len())
	}
	if tr.Period() != 600*sim.Second {
		t.Fatalf("fixture period = %v", tr.Period())
	}
	if tr.MinLatency() != 32*sim.Millisecond {
		t.Fatalf("fixture min latency = %v", tr.MinLatency())
	}
}

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(`
# comment line
{"t_ms": 0, "latency_ms": 10, "jitter_ms": 2, "loss": 0.01}

{"t_ms": 500, "latency_ms": 20, "jitter_ms": 0, "loss": 0}
`))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.MinLatency() != 10*sim.Millisecond {
		t.Fatalf("parsed %d samples, min %v", tr.Len(), tr.MinLatency())
	}
	// Last segment extends by its predecessor's width: 500ms + 500ms.
	if tr.Period() != sim.Second {
		t.Fatalf("period = %v", tr.Period())
	}
	if _, err := ParseTrace(strings.NewReader(`{"t_ms": bogus}`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestNewLinkTraceValidation(t *testing.T) {
	ok := TraceSample{At: 0, Latency: 10 * sim.Millisecond}
	cases := []struct {
		name    string
		samples []TraceSample
	}{
		{"empty", nil},
		{"nonzero start", []TraceSample{{At: sim.Second, Latency: sim.Millisecond}}},
		{"non-increasing", []TraceSample{ok, {At: 0, Latency: sim.Millisecond}}},
		{"zero latency", []TraceSample{{At: 0, Latency: 0}}},
		{"negative jitter", []TraceSample{{At: 0, Latency: sim.Millisecond, Jitter: -1}}},
		{"loss one", []TraceSample{{At: 0, Latency: sim.Millisecond, Loss: 1}}},
		{"negative loss", []TraceSample{{At: 0, Latency: sim.Millisecond, Loss: -0.1}}},
	}
	for _, c := range cases {
		if _, err := NewLinkTrace(c.samples); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewLinkTrace([]TraceSample{ok}); err != nil {
		t.Fatalf("single valid sample rejected: %v", err)
	}
}

func TestSampleAtStepsAndLoops(t *testing.T) {
	tr, err := NewLinkTrace([]TraceSample{
		{At: 0, Latency: 10 * sim.Millisecond},
		{At: sim.Second, Latency: 20 * sim.Millisecond},
		{At: 2 * sim.Second, Latency: 30 * sim.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Period() != 3*sim.Second {
		t.Fatalf("period = %v", tr.Period())
	}
	at := func(d sim.Duration) sim.Duration {
		return tr.SampleAt(sim.Time(0).Add(d)).Latency
	}
	cases := []struct {
		at   sim.Duration
		want sim.Duration
	}{
		{0, 10 * sim.Millisecond},
		{999 * sim.Millisecond, 10 * sim.Millisecond},
		{sim.Second, 20 * sim.Millisecond},
		{2500 * sim.Millisecond, 30 * sim.Millisecond},
		// Loops: period is 3s, so 3s is segment 0 again.
		{3 * sim.Second, 10 * sim.Millisecond},
		{10 * sim.Second, 20 * sim.Millisecond},
	}
	for _, c := range cases {
		if got := at(c.at); got != c.want {
			t.Errorf("SampleAt(%v) latency = %v, want %v", c.at, got, c.want)
		}
	}
}

func tracePerturberFixture(seed uint64, now *sim.Time) *TracePerturber {
	fed := topology.New(
		topology.Cluster{Name: "a", Nodes: 2, Intra: topology.MyrinetLike()},
		topology.Cluster{Name: "b", Nodes: 2, Intra: topology.MyrinetLike()},
	)
	tr := DefaultTrace()
	fed.SetAllInterLinks(topology.Link{Latency: tr.MinLatency(), Bandwidth: topology.Mbps(10)})
	return NewTracePerturber(tr, fed, seed, func() sim.Time { return *now })
}

// TestTracePerturberDeterministicPerPipe checks the RNG-stream
// discipline the sharded runner relies on: the perturbation sequence a
// directed pipe sees is a pure function of (seed, pipe, traffic
// order), and every inter message reports perturbed (off-batch).
func TestTracePerturberDeterministicPerPipe(t *testing.T) {
	msg := Message{
		Src: topology.NodeID{Cluster: 0, Index: 0},
		Dst: topology.NodeID{Cluster: 1, Index: 0},
	}
	run := func() []sim.Duration {
		var now sim.Time
		p := tracePerturberFixture(7, &now)
		var out []sim.Duration
		for i := 0; i < 200; i++ {
			now = sim.Time(0).Add(sim.Duration(i) * 3 * sim.Second)
			pert, perturbed := p.Perturb(msg, false, 0)
			if !perturbed {
				t.Fatal("inter message not perturbed: it would ride a batch")
			}
			if pert.Extra < 0 {
				t.Fatalf("negative extra %v at step %d", pert.Extra, i)
			}
			out = append(out, pert.Extra)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("perturbation %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	// Intra traffic is untouched.
	var now sim.Time
	p := tracePerturberFixture(7, &now)
	intra := Message{
		Src: topology.NodeID{Cluster: 0, Index: 0},
		Dst: topology.NodeID{Cluster: 0, Index: 1},
	}
	if _, perturbed := p.Perturb(intra, true, 0); perturbed {
		t.Fatal("intra message perturbed")
	}
}

// TestTracePerturberLossDelaysNotDrops drives the perturber through
// the fixture's lossy segment and checks loss shows up as counted
// retransmission delay, never as a drop.
func TestTracePerturberLossDelaysNotDrops(t *testing.T) {
	now := sim.Time(0).Add(245 * sim.Second) // 5% loss segment of the fixture
	p := tracePerturberFixture(3, &now)
	p.Retransmits = &sim.Counter{}
	msg := Message{
		Src: topology.NodeID{Cluster: 0, Index: 0},
		Dst: topology.NodeID{Cluster: 1, Index: 0},
	}
	seg := p.trace.SampleAt(now)
	if seg.Loss == 0 {
		t.Fatal("fixture segment at 245s should be lossy")
	}
	rto := 2*seg.Latency + seg.Jitter
	var withRetry int
	for i := 0; i < 2000; i++ {
		pert, perturbed := p.Perturb(msg, false, 0)
		if !perturbed {
			t.Fatal("message dropped")
		}
		if pert.Extra >= rto {
			withRetry++
		}
	}
	if withRetry == 0 {
		t.Fatal("no retransmission delays at 5% loss over 2000 sends")
	}
	if p.Retransmits.Value() == 0 {
		t.Fatal("retransmit counter never incremented")
	}
}
