package netsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func testNet(t *testing.T, nClusters, nodesPer int) (*sim.Engine, *Network, *topology.Federation) {
	t.Helper()
	e := sim.NewEngine()
	fed := topology.Small(nClusters, nodesPer)
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	n := New(e, fed, sim.NewStats(), nil)
	return e, n, fed
}

func TestDeliveryTiming(t *testing.T) {
	e, n, fed := testNet(t, 2, 2)
	src := topology.NodeID{Cluster: 0, Index: 0}
	dst := topology.NodeID{Cluster: 0, Index: 1}
	var at sim.Time
	n.Register(dst, func(m Message) { at = e.Now() })
	n.Register(src, func(Message) {})

	const size = 1000
	n.Send(src, dst, KindApp, size, "x")
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(0).Add(fed.Clusters[0].Intra.Delay(size))
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestFIFOSerializationPerLink(t *testing.T) {
	e, n, fed := testNet(t, 2, 2)
	src := topology.NodeID{Cluster: 0, Index: 0}
	dst := topology.NodeID{Cluster: 1, Index: 0}
	var order []int
	var times []sim.Time
	n.Register(dst, func(m Message) {
		order = append(order, m.Payload.(int))
		times = append(times, e.Now())
	})
	n.Register(src, func(Message) {})

	const size = 10000
	n.Send(src, dst, KindApp, size, 1)
	n.Send(src, dst, KindApp, size, 2)
	n.Send(src, dst, KindApp, size, 3)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	// Messages queue behind each other: arrival k = k*transmit + latency.
	link := fed.InterLink(0, 1)
	tx := link.TransmitTime(size)
	for k, at := range times {
		want := sim.Time(0).Add(tx.Scale(float64(k+1)) + link.Latency)
		if at != want {
			t.Fatalf("message %d delivered at %v, want %v", k+1, at, want)
		}
	}
}

func TestIndependentLinksDoNotQueue(t *testing.T) {
	e, n, _ := testNet(t, 2, 2)
	a := topology.NodeID{Cluster: 0, Index: 0}
	b := topology.NodeID{Cluster: 0, Index: 1}
	c := topology.NodeID{Cluster: 1, Index: 0}
	var times []sim.Time
	handler := func(m Message) { times = append(times, e.Now()) }
	n.Register(b, handler)
	n.Register(c, handler)
	n.Register(a, func(Message) {})

	// One intra and one inter message from the same source use different
	// serialization resources, so neither delays the other.
	n.Send(a, b, KindApp, 1000, nil)
	n.Send(a, c, KindApp, 1000, nil)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("deliveries = %d", len(times))
	}
}

func TestDownNodeSemantics(t *testing.T) {
	e, n, _ := testNet(t, 2, 2)
	a := topology.NodeID{Cluster: 0, Index: 0}
	b := topology.NodeID{Cluster: 0, Index: 1}
	got := 0
	n.Register(b, func(Message) { got++ })
	n.Register(a, func(Message) {})

	// Message already in flight when the destination dies: dropped.
	n.Send(a, b, KindApp, 100, nil)
	n.SetDown(b, true)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("message delivered to a down node")
	}
	if !n.Down(b) {
		t.Fatal("Down not reported")
	}

	// A down source sends nothing.
	n.SetDown(a, true)
	n.Send(a, b, KindApp, 100, nil)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if v := n.Stats().CounterValue("net.dropped.src_down"); v != 1 {
		t.Fatalf("src_down drops = %d", v)
	}

	// After repair, traffic flows again.
	n.SetDown(a, false)
	n.SetDown(b, false)
	n.Send(a, b, KindApp, 100, nil)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("deliveries after repair = %d", got)
	}
}

func TestBroadcastReachesWholeClusterOnly(t *testing.T) {
	e, n, fed := testNet(t, 2, 4)
	src := topology.NodeID{Cluster: 0, Index: 1}
	recv := make(map[topology.NodeID]int)
	for _, id := range fed.AllNodes() {
		id := id
		n.Register(id, func(Message) { recv[id]++ })
	}
	n.Broadcast(src, KindProto, 64, "clc-request")
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for _, id := range fed.AllNodes() {
		want := 0
		if id.Cluster == src.Cluster && id != src {
			want = 1
		}
		if recv[id] != want {
			t.Fatalf("node %v received %d, want %d", id, recv[id], want)
		}
	}
}

func TestAccounting(t *testing.T) {
	e, n, _ := testNet(t, 2, 2)
	a := topology.NodeID{Cluster: 0, Index: 0}
	b := topology.NodeID{Cluster: 1, Index: 0}
	n.Register(a, func(Message) {})
	n.Register(b, func(Message) {})
	n.Send(a, b, KindApp, 500, nil)
	n.Send(a, b, KindProto, 100, nil)
	n.Send(b, a, KindApp, 200, nil)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := n.AppMessages(0, 1); got != 1 {
		t.Fatalf("app msgs 0->1 = %d", got)
	}
	if got := n.AppMessages(1, 0); got != 1 {
		t.Fatalf("app msgs 1->0 = %d", got)
	}
	st := n.Stats()
	if v := st.CounterValue("net.sent.proto"); v != 1 {
		t.Fatalf("proto msgs = %d", v)
	}
	if v := st.CounterValue("net.bytes.app"); v != 700 {
		t.Fatalf("app bytes = %d", v)
	}
	if v := st.CounterValue("net.delivered"); v != 3 {
		t.Fatalf("delivered = %d", v)
	}
}

func TestInjectedDrops(t *testing.T) {
	e, n, _ := testNet(t, 2, 1)
	a := topology.NodeID{Cluster: 0, Index: 0}
	b := topology.NodeID{Cluster: 1, Index: 0}
	n.Register(a, func(Message) {})
	delivered := 0
	n.Register(b, func(Message) { delivered++ })
	n.DropInterCluster = func(m Message) bool { return m.Kind == KindApp }
	n.Send(a, b, KindApp, 10, nil)
	n.Send(a, b, KindProto, 10, nil)
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want only the proto message", delivered)
	}
}

func TestSendPanics(t *testing.T) {
	_, n, _ := testNet(t, 1, 2)
	a := topology.NodeID{Cluster: 0, Index: 0}
	mustPanic(t, "self-send", func() { n.Send(a, a, KindApp, 1, nil) })
	mustPanic(t, "invalid dst", func() {
		n.Send(a, topology.NodeID{Cluster: 9, Index: 0}, KindApp, 1, nil)
	})
	n.Register(a, func(Message) {})
	mustPanic(t, "double register", func() { n.Register(a, func(Message) {}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
