package netsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestBatchedDeliveryMatchesUnbatched runs the same send pattern on a
// batched and an unbatched network and asserts delivery order and
// per-message delivery times are identical — the byte-identity
// contract of wire batching at netsim level.
func TestBatchedDeliveryMatchesUnbatched(t *testing.T) {
	type delivery struct {
		payload int
		at      sim.Time
	}
	run := func(unbatched bool) []delivery {
		e := sim.NewEngine()
		fed := topology.Small(3, 2)
		if err := fed.Validate(); err != nil {
			t.Fatal(err)
		}
		n := New(e, fed, sim.NewStats(), nil)
		if unbatched {
			n.DisableBatching()
		}
		var got []delivery
		for c := 0; c < 3; c++ {
			for i := 0; i < 2; i++ {
				id := topology.NodeID{Cluster: topology.ClusterID(c), Index: i}
				n.Register(id, func(m Message) {
					got = append(got, delivery{m.Payload.(int), e.Now()})
				})
			}
		}
		src := topology.NodeID{Cluster: 0, Index: 0}
		// Same-tick fan: several messages down one pipe (batch), a
		// message on another pipe, and an intra-cluster send.
		for k := 0; k < 5; k++ {
			n.Send(src, topology.NodeID{Cluster: 1, Index: 0}, KindApp, 4000, 100+k)
		}
		n.Send(src, topology.NodeID{Cluster: 2, Index: 0}, KindApp, 4000, 200)
		n.Send(src, topology.NodeID{Cluster: 0, Index: 1}, KindApp, 4000, 300)
		// A later tick reuses the same pipe: the tick guard must open a
		// fresh batch rather than extend the flushed one.
		e.Schedule(sim.Second, func(*sim.Engine) {
			n.Send(src, topology.NodeID{Cluster: 1, Index: 0}, KindApp, 4000, 400)
			n.Send(src, topology.NodeID{Cluster: 1, Index: 0}, KindApp, 4000, 401)
		})
		if _, err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return got
	}

	batched, reference := run(false), run(true)
	if len(batched) != len(reference) {
		t.Fatalf("batched delivered %d, reference %d", len(batched), len(reference))
	}
	for i := range reference {
		if batched[i] != reference[i] {
			t.Fatalf("delivery %d: batched %+v, reference %+v", i, batched[i], reference[i])
		}
	}
}

// TestBatchPoolRecycles checks that drained batch buffers return to the
// pool instead of accumulating: after many flushed batches the free
// list holds at most the working set of open pipes.
func TestBatchPoolRecycles(t *testing.T) {
	e := sim.NewEngine()
	fed := topology.Small(2, 1)
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	n := New(e, fed, sim.NewStats(), nil)
	n.Register(topology.NodeID{Cluster: 0, Index: 0}, func(Message) {})
	delivered := 0
	n.Register(topology.NodeID{Cluster: 1, Index: 0}, func(Message) { delivered++ })
	src := topology.NodeID{Cluster: 0, Index: 0}
	dst := topology.NodeID{Cluster: 1, Index: 0}
	for round := 0; round < 50; round++ {
		at := sim.Time(0).Add(sim.Duration(round) * sim.Second)
		e.ScheduleCallAt(at, func(any) {
			for k := 0; k < 4; k++ {
				n.Send(src, dst, KindApp, 1000, k)
			}
		}, nil)
	}
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered != 200 {
		t.Fatalf("delivered %d, want 200", delivered)
	}
	if len(n.batchFree) > 2 {
		t.Fatalf("batch free list holds %d buffers after sequential rounds, want <= 2 (pooling broken)", len(n.batchFree))
	}
	for slot, pb := range n.openBatch {
		if pb != nil {
			t.Fatalf("slot %d still holds a drained batch pointer", slot)
		}
	}
}

// TestBatchMonotoneGuard exercises the arrival-regression fallback: a
// member whose arrival would precede the batch's last recorded arrival
// must open a fresh batch, keeping every batch internally FIFO.
func TestBatchMonotoneGuard(t *testing.T) {
	e := sim.NewEngine()
	fed := topology.Small(2, 1)
	if err := fed.Validate(); err != nil {
		t.Fatal(err)
	}
	n := New(e, fed, sim.NewStats(), nil)
	n.Register(topology.NodeID{Cluster: 0, Index: 0}, func(Message) {})
	var got []sim.Time
	n.Register(topology.NodeID{Cluster: 1, Index: 0}, func(Message) { got = append(got, e.Now()) })
	// DeliverCrossAt accepts explicit arrivals: feed one that jumps
	// ahead and then one that regresses below the batch's last.
	m := Message{
		Src:  topology.NodeID{Cluster: 0, Index: 0},
		Dst:  topology.NodeID{Cluster: 1, Index: 0},
		Kind: KindApp, Size: 100,
	}
	n.DeliverCrossAt(m, sim.Time(0).Add(10*sim.Millisecond), 1)
	n.DeliverCrossAt(m, sim.Time(0).Add(50*sim.Millisecond), 2)
	n.DeliverCrossAt(m, sim.Time(0).Add(20*sim.Millisecond), 3) // regression
	if _, err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{
		sim.Time(0).Add(10 * sim.Millisecond),
		sim.Time(0).Add(20 * sim.Millisecond),
		sim.Time(0).Add(50 * sim.Millisecond),
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery times %v, want %v", got, want)
		}
	}
}
