// Garbage collection: HC3I must keep multiple CLCs per cluster (the
// recovery line is computed at rollback time), so memory grows until
// the collector simulates a failure in every cluster and discards
// whatever can never be a rollback target — reproducing the dynamics
// of the paper's Tables 2 and 3.
//
//	go run ./examples/garbage_collection
package main

import (
	"fmt"
	"log"
	"time"

	"repro/hc3i"
)

func main() {
	res, err := hc3i.Run(hc3i.Config{
		Clusters: []hc3i.Cluster{
			{Name: "alpha", Nodes: 10},
			{Name: "beta", Nodes: 10},
		},
		TotalTime:    8 * time.Hour,
		RatesPerHour: [][]float64{{600, 15}, {12, 600}},
		CLCPeriods:   []time.Duration{20 * time.Minute, 20 * time.Minute},
		// Collect every 2 hours, like the paper's §5.4 experiment.
		GCPeriod: 2 * time.Hour,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("stored CLCs around each garbage collection (paper Table 2 format):")
	fmt.Printf("  %-14s %-18s %s\n", "collection at", "alpha before/after", "beta before/after")
	for _, r := range res.GCRounds {
		fmt.Printf("  %-14v %-18s %s\n",
			r.At.Truncate(time.Second),
			fmt.Sprintf("%d -> %d", r.Before[0], r.After[0]),
			fmt.Sprintf("%d -> %d", r.Before[1], r.After[1]))
	}
	fmt.Printf("\ncompleted rounds: %d, checkpoints reclaimed: %d, log entries purged: %d\n",
		res.Counter("gc.rounds_completed"),
		res.Counter("gc.clcs_removed"),
		res.Counter("gc.log_entries_removed"))
	fmt.Printf("max logged inter-cluster messages on any node: %d\n", res.MaxLoggedMessages)
	fmt.Println("\nonly the *oldest* CLCs are removed (§3.5), so rollbacks never get")
	fmt.Println("deeper — a trade-off between collection frequency and memory.")
}
