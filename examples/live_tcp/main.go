// Live TCP: the same protocol code that the simulator drives, running
// for real — one goroutine per node, wall-clock checkpoint timers, and
// gob-encoded messages over loopback TCP. A node crashes mid-run and
// the cluster recovers from neighbour replicas.
//
//	go run ./examples/live_tcp
package main

import (
	"fmt"
	"log"
	"time"

	"repro/hc3i"
)

func main() {
	fed, err := hc3i.StartLive(hc3i.LiveConfig{
		Clusters:   []int{3, 3},
		CLCPeriods: []time.Duration{60 * time.Millisecond, 60 * time.Millisecond},
		UseTCP:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Stop()

	// Some inter-cluster traffic: the first message piggybacks SN 1
	// and forces cluster 1's first CLC, like m1 in the paper's sample.
	for k := 0; k < 4; k++ {
		fed.Send(0, k%3, 1, (k+1)%3, 256)
		time.Sleep(40 * time.Millisecond)
	}

	// Crash a node, let the detector fire, recover.
	fmt.Println("crashing node 1 of cluster 0 ...")
	fed.Crash(0, 1)
	time.Sleep(50 * time.Millisecond)
	if err := fed.Recover(0, 1); err != nil {
		log.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	fed.Quiesce()

	fmt.Println("checkpoints: ", fed.String())
	fmt.Printf("rollbacks in cluster 0:        %d\n", fed.Counter("rollback.count.c0"))
	fmt.Printf("states recovered from replica: %d\n", fed.Counter("storage.recovered_states"))
	fmt.Printf("forced CLCs in cluster 1:      %d\n", fed.Counter("clc.committed.c1.forced"))
	fmt.Printf("cluster 0 SNs agree:           %v %v %v\n",
		fed.SN(0, 0), fed.SN(0, 1), fed.SN(0, 2))
}
