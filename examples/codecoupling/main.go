// Code coupling: the paper's Figure 1 pipeline — simulation ->
// treatment -> display across three clusters — showing how the
// communication-induced mechanism places forced checkpoints exactly
// where the inter-module dependencies are, and how the transitive
// extension (§7) reduces them.
//
//	go run ./examples/codecoupling
package main

import (
	"fmt"
	"log"
	"time"

	"repro/hc3i"
)

func run(transitive bool) *hc3i.Result {
	res, err := hc3i.Run(hc3i.Config{
		Clusters: []hc3i.Cluster{
			{Name: "simulation", Nodes: 12},
			{Name: "treatment", Nodes: 12},
			{Name: "display", Nodes: 12},
		},
		TotalTime: 4 * time.Hour,
		// Heavy traffic inside each module; pipelined flows along the
		// chain plus a thin direct simulation->display edge whose
		// forced checkpoints the transitive variant can avoid.
		RatesPerHour: [][]float64{
			{900, 60, 20},
			{0, 900, 60},
			{0, 0, 900},
		},
		CLCPeriods: []time.Duration{
			20 * time.Minute, 20 * time.Minute, 20 * time.Minute,
		},
		TransitiveDDV: transitive,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	for _, transitive := range []bool{false, true} {
		res := run(transitive)
		label := "base protocol (SN piggybacking)"
		if transitive {
			label = "transitive extension (DDV piggybacking)"
		}
		fmt.Printf("-- %s --\n", label)
		var forced uint64
		for _, c := range res.Clusters {
			fmt.Printf("  %-11s %2d unforced + %2d forced CLCs\n", c.Name, c.Unforced, c.Forced)
			forced += c.Forced
		}
		fmt.Printf("  total forced: %d\n\n", forced)
	}
	fmt.Println("the pipeline forces checkpoints downstream at each new upstream")
	fmt.Println("checkpoint; piggybacking whole DDVs teaches 'display' about")
	fmt.Println("'simulation' checkpoints transitively, so the direct edge forces less")
}
