// Baselines: the same workload and the same crash under six
// checkpointing protocols, contrasting rollback scope and checkpoint
// cost — a quantitative rendering of the paper's §2.2 and §6
// discussion.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"time"

	"repro/hc3i"
)

func main() {
	protocols := []struct {
		p    hc3i.Protocol
		note string
	}{
		{hc3i.HC3I, "hybrid: coordinated inside, CIC between (the paper)"},
		{hc3i.ForceAll, "CIC strawman: checkpoint per inter-cluster message"},
		{hc3i.Independent, "no forcing: rollbacks may domino"},
		{hc3i.GlobalCoordinated, "one 2PC across the WAN"},
		{hc3i.HierCoordinated, "paper ref [9]: coordinated lines at both levels"},
		{hc3i.PessimisticLog, "paper ref [3] MPICH-V style: log everything, needs PWD"},
	}

	fmt.Printf("%-20s %8s %8s %10s %11s  %s\n",
		"protocol", "ckpts", "forced", "rollbacks", "proto MB", "note")
	for _, pr := range protocols {
		res, err := hc3i.Run(hc3i.Config{
			Clusters: []hc3i.Cluster{
				{Name: "left", Nodes: 8},
				{Name: "right", Nodes: 8},
			},
			TotalTime:    3 * time.Hour,
			RatesPerHour: [][]float64{{600, 40}, {25, 600}},
			CLCPeriods:   []time.Duration{20 * time.Minute, 20 * time.Minute},
			Protocol:     pr.p,
			Crashes:      []hc3i.Crash{{At: 100 * time.Minute, Cluster: 0, Node: 2}},
			StateSize:    1 << 20,
			Seed:         5,
		})
		if err != nil {
			log.Fatal(pr.p, ": ", err)
		}
		var ckpts, forced, rollbacks uint64
		for _, c := range res.Clusters {
			ckpts += c.Committed
			forced += c.Forced
			rollbacks += c.Rollbacks
		}
		fmt.Printf("%-20s %8d %8d %10d %11.1f  %s\n",
			pr.p, ckpts, forced, rollbacks,
			float64(res.Counter("net.bytes.proto"))/1e6, pr.note)
	}
	fmt.Println("\nHC3I keeps the rollback scope of message logging's neighbourhood")
	fmt.Println("without its determinism assumption, and the checkpoint cost of")
	fmt.Println("coordinated protocols without freezing the WAN.")
}
