// Failure and recovery: watch a node crash take its cluster back to
// the last CLC and a rollback alert cascade to a dependent cluster,
// while an independent cluster keeps running — the paper's §4 sample
// execution, live.
//
//	go run ./examples/failure_recovery
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/hc3i"
)

func main() {
	fmt.Println("three clusters: 'source' feeds 'sink'; 'bystander' talks to nobody.")
	fmt.Println("a node of 'source' crashes at t=50m — trace below:")
	fmt.Println()

	res, err := hc3i.Run(hc3i.Config{
		Clusters: []hc3i.Cluster{
			{Name: "source", Nodes: 8},
			{Name: "sink", Nodes: 8},
			{Name: "bystander", Nodes: 8},
		},
		TotalTime: 90 * time.Minute,
		RatesPerHour: [][]float64{
			{600, 60, 0},
			{0, 600, 0},
			{0, 0, 600},
		},
		CLCPeriods: []time.Duration{
			15 * time.Minute, 15 * time.Minute, 15 * time.Minute,
		},
		Crashes:    []hc3i.Crash{{At: 50 * time.Minute, Cluster: 0, Node: 3}},
		Trace:      os.Stdout,
		TraceLevel: "info",
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for _, c := range res.Clusters {
		verdict := "unaffected"
		if c.Rollbacks > 0 {
			verdict = fmt.Sprintf("rolled back %d time(s)", c.Rollbacks)
		}
		fmt.Printf("  %-10s %s\n", c.Name, verdict)
	}
	fmt.Printf("\nrecovered states fetched from neighbour replicas: %d\n",
		res.Counter("storage.recovered_states"))
	fmt.Printf("logged messages resent to repair receiver state:   %d\n",
		res.Counter("log.resent")+res.Counter("log.resent_after_recovery"))
	fmt.Println("\n'sink' was dragged back because its DDV entry for 'source' was >=")
	fmt.Println("the alerted SN (§3.4); 'bystander' exchanged no messages, so the")
	fmt.Println("protocol behaved as independent checkpointing for it (§6).")
}
