// Quickstart: simulate a two-cluster federation running a
// code-coupling application under the HC3I checkpointing protocol and
// print what the protocol did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/hc3i"
)

func main() {
	res, err := hc3i.Run(hc3i.Config{
		// Two clusters: a simulation module and a display module, as
		// in the paper's Figure 1. SAN/WAN link classes default to the
		// paper's Myrinet-like and Ethernet-like parameters.
		Clusters: []hc3i.Cluster{
			{Name: "simulation", Nodes: 16},
			{Name: "display", Nodes: 16},
		},
		// One hour of virtual execution: lots of intra-cluster
		// traffic, a light stream of results flowing to the display.
		TotalTime:    time.Hour,
		RatesPerHour: [][]float64{{1200, 30}, {2, 900}},
		// Unforced cluster checkpoints every 10 minutes.
		CLCPeriods: []time.Duration{10 * time.Minute, 10 * time.Minute},
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("application messages:")
	for i, row := range res.AppMessages {
		for j, n := range row {
			if n > 0 {
				fmt.Printf("  %s -> %s: %d\n", res.Clusters[i].Name, res.Clusters[j].Name, n)
			}
		}
	}
	fmt.Println("\ncheckpoints:")
	for _, c := range res.Clusters {
		fmt.Printf("  %-11s %2d unforced + %2d forced = %2d CLCs (%d stored at end)\n",
			c.Name, c.Unforced, c.Forced, c.Committed, c.Stored)
	}
	fmt.Printf("\nsimulated %v in %d events\n", res.EndTime, res.Events)
}
