// Package repro is a from-scratch Go reproduction of "A Hierarchical
// Checkpointing Protocol for Parallel Applications in Cluster
// Federations" (Monnet, Morin, Badrinath — 9th IEEE Workshop on
// Fault-Tolerant Parallel, Distributed and Network-Centric Systems,
// 2004): the HC3I protocol combining coordinated checkpointing inside
// clusters with communication-induced checkpointing between clusters,
// plus its discrete event simulator, baselines and the full evaluation.
//
// Module layout (module "repro", go 1.22):
//
//	hc3i                  public API: Run one federation, the experiment
//	                      registry, the parallel runner and the
//	                      scenario matrix
//	cmd/hc3ibench         regenerate every table/figure and run the
//	                      scenario matrix (-parallel, -matrix, -csv)
//	cmd/hc3isim           one simulation from the paper's config files
//	cmd/hc3itrace         watch the protocol work, event by event
//	internal/sim          deterministic discrete event engine, RNG
//	                      streams, statistics
//	internal/topology     clusters, SAN/LAN/WAN link classes (incl. the
//	                      high-jitter profile), federations
//	internal/netsim       latency/bandwidth/FIFO network model
//	internal/app          rate-driven workloads (uniform, pipeline,
//	                      hotspot, bursty on-off envelopes)
//	internal/core         the HC3I protocol state machine
//	internal/baseline     global-coordinated, hierarchical-coordinated
//	                      and pessimistic-logging baselines
//	internal/federation   harness wiring nodes, network, failures
//	internal/failure      fail-stop crash injection
//	internal/experiments  the registry (T1, F6-F9, T2-T3, A1-A9), the
//	                      parallel runner and the scenario matrix
//	internal/config       the paper simulator's three input files
//	internal/runtime      live (wall-clock, TCP) runtime for the same
//	                      protocol code
//
// Start with the public API in repro/hc3i, the runnable examples under
// examples/, or the tools:
//
//	go run ./cmd/hc3isim    # one simulation from the paper's config files
//	go run ./cmd/hc3ibench  # regenerate every table and figure
//	go run ./cmd/hc3ibench -quick -matrix -parallel 8  # scenario matrix
//	go run ./cmd/hc3itrace  # watch the protocol work, event by event
//
// Every simulation is deterministic per seed, and the parallel runner
// preserves that: each federation is an isolated single-threaded
// simulation, results are collected in input order, and the rendered
// tables are byte-identical whatever the worker count.
//
// # Allocation discipline
//
// The simulation core is allocation-slim by construction:
//
//   - internal/sim's engine stores events in a slab ([]event) indexed
//     by a typed binary heap of slot numbers. Slots are recycled
//     through a free list and guarded by generation stamps, so an
//     EventRef into a recycled slot is inert (Cancel/Pending degrade to
//     no-ops on a generation mismatch); scheduling and firing allocate
//     nothing (BenchmarkEnginePushPop: 0 allocs/op).
//   - Engine.ScheduleCall(fn, arg) is the closure-free scheduling path:
//     the dominant schedulers (netsim delivery, federation app sends)
//     hoist fn to a bound-once function and pass per-event state
//     through arg — a pooled pointer, so no closure per event.
//   - netsim recycles its in-flight Message boxes through a free list
//     and caches stat counter pointers per (event, kind, cluster pair),
//     so the per-message path builds no key strings.
//   - internal/core reuses DDV scratch buffers where a vector does not
//     escape the current event (see Node.buildForceTarget and
//     DDV.CopyFrom); every escape point (stored Metas, wire messages)
//     still clones, with ownership noted at the call site.
//   - federation.Arena pools per-run scratch (the event engine) across
//     the sweep points of one runner invocation; Engine.Reset wipes the
//     clock, queue and generation stamps, so pooled and fresh runs are
//     byte-identical — pinned by the determinism goldens in
//     internal/experiments/testdata/.
//
// The benchmarks in this package (bench_test.go) tie each paper
// artifact to a `go test -bench` target. BENCH_baseline.json records
// the measured seed baseline; later PRs append BENCH_pr<N>.json
// snapshots (never overwriting earlier ones) so the allocation
// trajectory stays visible, and cmd/benchguard gates CI on allocs/op
// regressions beyond 20% of baseline.
package repro
