// Package repro is a from-scratch Go reproduction of "A Hierarchical
// Checkpointing Protocol for Parallel Applications in Cluster
// Federations" (Monnet, Morin, Badrinath — 9th IEEE Workshop on
// Fault-Tolerant Parallel, Distributed and Network-Centric Systems,
// 2004): the HC3I protocol combining coordinated checkpointing inside
// clusters with communication-induced checkpointing between clusters,
// plus its discrete event simulator, baselines and the full evaluation.
//
// Start with the public API in repro/hc3i, the runnable examples under
// examples/, or the tools:
//
//	go run ./cmd/hc3isim    # one simulation from the paper's config files
//	go run ./cmd/hc3ibench  # regenerate every table and figure
//	go run ./cmd/hc3itrace  # watch the protocol work, event by event
//
// The benchmarks in this package (bench_test.go) tie each paper
// artifact to a `go test -bench` target.
package repro
