// Package repro is a from-scratch Go reproduction of "A Hierarchical
// Checkpointing Protocol for Parallel Applications in Cluster
// Federations" (Monnet, Morin, Badrinath — 9th IEEE Workshop on
// Fault-Tolerant Parallel, Distributed and Network-Centric Systems,
// 2004): the HC3I protocol combining coordinated checkpointing inside
// clusters with communication-induced checkpointing between clusters,
// plus its discrete event simulator, baselines and the full evaluation.
//
// Module layout (module "repro", go 1.22):
//
//	hc3i                  public API: Run one federation, the experiment
//	                      registry, the parallel runner and the
//	                      scenario matrix
//	cmd/hc3ibench         regenerate every table/figure and run the
//	                      scenario matrix (-parallel, -matrix, -csv)
//	cmd/hc3isim           one simulation from the paper's config files
//	cmd/hc3itrace         watch the protocol work, event by event
//	internal/sim          deterministic discrete event engine, RNG
//	                      streams, statistics
//	internal/topology     clusters, SAN/LAN/WAN link classes (incl. the
//	                      high-jitter profile), federations
//	internal/netsim       latency/bandwidth/FIFO network model
//	internal/app          rate-driven workloads (uniform, pipeline,
//	                      hotspot, bursty on-off envelopes)
//	internal/core         the HC3I protocol state machine
//	internal/baseline     global-coordinated, hierarchical-coordinated
//	                      and pessimistic-logging baselines
//	internal/federation   harness wiring nodes, network, failures
//	internal/failure      fail-stop crash injection
//	internal/oracle       online protocol invariant checker (attach
//	                      with -oracle; always on in the chaos tier)
//	internal/chaos        seeded adversarial scheduler (reordering,
//	                      duplicates, targeted crash fuses)
//	internal/experiments  the registry (T1, F6-F9, T2-T3, A1-A9), the
//	                      parallel runner and the scenario matrix
//	internal/config       the paper simulator's three input files
//	internal/runtime      live (wall-clock, TCP) runtime for the same
//	                      protocol code
//
// Start with the public API in repro/hc3i, the runnable examples under
// examples/, or the tools:
//
//	go run ./cmd/hc3isim    # one simulation from the paper's config files
//	go run ./cmd/hc3ibench  # regenerate every table and figure
//	go run ./cmd/hc3ibench -quick -matrix -parallel 8  # scenario matrix
//	go run ./cmd/hc3itrace  # watch the protocol work, event by event
//
// Every simulation is deterministic per seed, and the parallel runner
// preserves that: each federation is an isolated single-threaded
// simulation, results are collected in input order, and the rendered
// tables are byte-identical whatever the worker count.
//
// # Invariant oracle and the chaos tier
//
// The -oracle flag (federation.Options.Oracle) attaches
// internal/oracle to any run: a core.Observer asserting, at every
// commit, rollback, delivery and GC event, the protocol's global
// safety properties — per-epoch DDV monotonicity and cluster-wide
// commit agreement (§3.1/§3.2), commit-line domination of all stable
// checkpoints (§3.2), no orphan deliveries after a rollback (§3.4,
// tracked as per-delivery obligations discharged only by the
// receiver's own cascaded rollback), recovery-line sanity (§3.4),
// garbage-collection safety against the recovery-line analysis
// (§3.5), and delta-codec/pipe lockstep (core/delta.go's wire
// contract). A shadow causal history patched with the wire's own
// delta pairs keeps the steady-state checks O(changed entries).
// Results are byte-identical with the oracle attached; the first
// violation stops the run with a diagnostic.
//
// The chaos tier (-matrix -filter tier=chaos) layers internal/chaos
// over the network: seeded adversarial schedules — bounded
// inter-cluster reordering within the jitter envelope, duplicate
// deliveries where the wire contract permits, and crash fuses aimed
// at protocol-sensitive windows (mid-2PC, mid-rollback-wave,
// mid-GC-round) — every run replayable from a single -chaos-seed,
// swept with -chaos-seeds, always oracle-checked. The tier's seed
// sweeps found (and now pin the fixes for) three real protocol bugs:
// dropped deferred rollback alerts after crash recovery, held
// messages delivered inside the successor checkpoint's freeze window,
// and the cascade-suppression memo silencing a genuinely new rollback
// (fixed by the post-restore anchor CLC; see README).
//
// # The ladder-queue engine
//
// internal/sim's engine stores events in a slab ([]event) whose slots
// are recycled through a free list and guarded by generation stamps,
// so an EventRef into a recycled slot is inert (Cancel/Pending degrade
// to no-ops on a generation mismatch). The queue over the slab is a
// two-tier ladder:
//
//   - The near tier is a bucket array (512 buckets of ~1ms) covering a
//     sliding window of virtual time. Events due inside the window —
//     the network deliveries that dominate real runs — are appended in
//     O(1); a bucket is sorted by (timestamp, sequence) only when the
//     drain cursor reaches it.
//   - Events due beyond the window spill into a binary heap; when the
//     near tier drains, the window jumps to the earliest far event and
//     everything inside the new window migrates into the buckets.
//
// Correctness never depends on tier routing: every pop compares the
// heads of both tiers by (timestamp, sequence), so a conservatively
// far-routed event still fires in exact order. A differential fuzz
// test (internal/sim/slab_test.go) drives the ladder and a reference
// container/heap queue with identical schedule/cancel sequences across
// every tier boundary and requires identical firing order.
//
// Tick-FIFO determinism contract: events sharing a timestamp fire in
// scheduling order. The sequence number provides the total order;
// bucket appends arrive in sequence order and in-drain insertions
// binary-search behind their equals, so Engine.Run can drain a whole
// tick in one batched dispatch loop without re-running the two-tier
// comparison — and the order is byte-identical to the seed's binary
// heap, pinned by the determinism goldens in
// internal/experiments/testdata/.
//
// # Allocation discipline
//
// The simulation core is allocation-slim by construction:
//
//   - Engine scheduling and firing allocate nothing
//     (BenchmarkEnginePushPopLadder: 0 allocs/op on both tiers), and
//     Engine.ScheduleCall(fn, arg) is the closure-free scheduling path:
//     the dominant schedulers (netsim delivery, federation app sends)
//     hoist fn to a bound-once function and pass per-event state
//     through arg — a pooled pointer, so no closure per event.
//   - Per-node simulation state (handlers, link serialization slots,
//     timers, protocol nodes) lives in flat slices indexed by the
//     topology's dense node ordinal (topology.NodeIndex); struct-keyed
//     maps put hashing on every delivery and were a top profile entry.
//   - internal/core flattens DDV storage into per-node arenas
//     (core.DDVArena): every vector that escapes an event — stored
//     Metas, piggybacked vectors, commit broadcasts — is sliced from a
//     chunked backing []SN owned by the node, one chunk allocation per
//     64 clones, cache-contiguous at 64 clusters. Ownership rules: a
//     handed-out vector is immutable-by-convention once shared, chunks
//     are never reallocated so outstanding slices stay valid, and the
//     chunk is garbage-collected when every vector cut from it drops.
//     Scratch that does not escape still reuses node buffers
//     (Node.buildForceTarget, DDV.CopyFrom).
//   - Wire messages travel in pooled boxes: the harness implements
//     core.BoxPool (AppMsg/AppAck) and reclaims boxes right after the
//     destination's OnMessage returns; the baseline protocols pool
//     their wire envelopes the same way through core.ReclaimableMsg.
//     BenchmarkNodeOnMessage runs at 0 allocs/op end to end.
//   - Application snapshots are O(1): NodeApp records deliveries in an
//     append-only journal and a snapshot is a journal position;
//     restores rewind the tail instead of copying the delivered map on
//     every checkpoint (which dominated the CPU profile).
//   - federation.Arena pools per-run scratch (the event engine) across
//     the sweep points of one runner invocation; Engine.Reset wipes the
//     clock, queue and generation stamps, so pooled and fresh runs are
//     byte-identical — pinned by the determinism goldens.
//
// # The delta DDV wire representation
//
// Dependency metadata (Direct Dependencies Vectors, one SN per cluster)
// used to travel dense on every carrying message, so piggyback, merge
// and clone costs grew linearly with federation width. The wire now
// carries only the (index, SN) pairs that changed (core/delta.go); the
// dense DDV remains the canonical in-node state, so protocol logic and
// recorded results are untouched. The contract is exactness: every
// decode reconstructs byte-for-byte the vector the dense encoding
// would have shipped, each escape point leaning on its own invariant —
// element-wise-max absorption for forced-CLC demands and prepare acks
// (omitted entries are provable no-ops, and the pending-force scans
// iterate a dirty-index set instead of the full width), the
// commit-chain base (Node.commitBase, re-anchored from a stored dense
// Meta on every rollback/recovery) for commit broadcasts, a FIFO
// pipe-exit codec in the cluster gateways (core.DeltaCodec +
// netsim.PipeExit, in sync across node crashes because the pipe is
// loss-free and decoding happens before the destination down-check)
// for transitive piggybacks, and a dense anchor plus per-commit pair
// sets for the garbage collector's stored-CLC chain reports.
//
// Both encodings are priced identically — at the dense width — in the
// network model, so modeled delays, byte counters and all goldens are
// invariant under the switch; the delta form saves simulator time and
// allocations, not modeled bytes. core.Config.DenseWire (hc3ibench
// -dense-ddv) selects the dense reference encoding; differential
// suites pin byte-identical output across the matrix goldens, the
// transitive/GC ablations, crash-recovery seed sweeps, and
// transitive-with-crash runs compared on full statistics dumps.
// BenchmarkPiggybackMessage parameterizes the steady-state per-message
// path by width: the delta encoding is near-flat in ns/op and B/op
// from 8 to 256 clusters while the dense path grows linearly (~3x
// slower and ~8.5x more bytes at 256).
//
// The scenario matrix gained a wide-federation tier (-filter
// tier=wide): 64/128/256 clusters on a sparse ring workload under
// HC3I with the transitive extension plus all three baselines, with
// its own determinism golden (matrix_golden_wide.csv) pinned
// sequentially, in parallel, and under the dense reference wire.
//
// # Benchmark gating
//
// The benchmarks in this package (bench_test.go) tie each paper
// artifact to a `go test -bench` target. BENCH_baseline.json records
// the measured seed baseline; later PRs append BENCH_pr<N>.json
// snapshots (never overwriting earlier ones) so the performance
// trajectory stays visible. cmd/benchguard gates CI on both axes:
// allocs/op on a fixed 20% budget (allocation counts are
// deterministic), and wall-clock ns/op on a calibrated variance band —
// benchmarks run with -count=5, the snapshot stores the mean and
// standard deviation, and a regression only fails when the current
// mean exceeds the baseline by more than max(floor, 3 standard
// deviations of the noisier run). Benchmarks whose baseline mean is
// below -wall-min-ns (default 50ns) gate on allocations only: at that
// scale the 3-sigma band spans the value itself and a wall verdict
// would be noise. cmd/hc3ibench takes -cpuprofile/-memprofile so the
// next perf PR starts from a profile, not a guess.
package repro
