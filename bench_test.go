package repro

// One benchmark per table and figure of the paper's evaluation (§5)
// plus one per ablation: each measures the wall-clock cost of
// regenerating that artifact end-to-end (full federation simulation,
// protocol included). Benchmarks run the reduced "quick" scale so the
// whole suite stays fast; `go run ./cmd/hc3ibench` regenerates
// everything at the paper's scale (100-node clusters, 10 virtual
// hours) and prints the rows.

import (
	"fmt"
	"testing"

	"repro/hc3i"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := hc3i.RunExperiment(id, uint64(i+1), true)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1 regenerates Table 1: application message counts per
// cluster pair under the §5.2 code-coupling workload.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkFigure6 regenerates Figure 6: forced/unforced CLCs in
// cluster 0 as its unforced-CLC timer sweeps (cluster 1 at infinity).
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, "F6") }

// BenchmarkFigure7 regenerates Figure 7: the same sweep observed from
// cluster 1 (only forced CLCs, proportional to cluster 0's).
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "F7") }

// BenchmarkFigure8 regenerates Figure 8: cluster 0's CLC count stays
// flat as cluster 1's timer sweeps.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, "F8") }

// BenchmarkFigure9 regenerates Figure 9: forced CLCs vs the number of
// cluster 1 -> cluster 0 messages.
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, "F9") }

// BenchmarkTable2 regenerates Table 2: stored CLCs before/after each
// garbage collection, two clusters.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkTable3 regenerates Table 3: garbage collection with three
// clusters.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkAblationTransitiveDDV measures the §7 transitive-dependency
// extension against the base protocol (A1).
func BenchmarkAblationTransitiveDDV(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkAblationForceAll measures HC3I against the force-on-every-
// message strawman of Figure 4 (A2).
func BenchmarkAblationForceAll(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkAblationReplication measures stable-storage replication
// degrees (A3).
func BenchmarkAblationReplication(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkAblationRollbackDepth measures rollback scope across the
// five protocols (A4).
func BenchmarkAblationRollbackDepth(b *testing.B) { benchExperiment(b, "A4") }

// BenchmarkAblationDistributedGC measures the centralized vs ring
// garbage collectors (A5).
func BenchmarkAblationDistributedGC(b *testing.B) { benchExperiment(b, "A5") }

// BenchmarkAblationMultiFault measures recovery under simultaneous
// faults in different clusters (A6).
func BenchmarkAblationMultiFault(b *testing.B) { benchExperiment(b, "A6") }

// BenchmarkAblationFreezeWindow measures the checkpoint freeze window
// vs state size and cluster size (A7).
func BenchmarkAblationFreezeWindow(b *testing.B) { benchExperiment(b, "A7") }

// BenchmarkAblationOverhead measures the protocol's byte overhead with
// checkpointing disabled vs enabled (A8, the §5.2 cost claim).
func BenchmarkAblationOverhead(b *testing.B) { benchExperiment(b, "A8") }

// BenchmarkAblationMemory measures checkpoint memory under no GC,
// periodic GC and the §3.5 saturation trigger (A9).
func BenchmarkAblationMemory(b *testing.B) { benchExperiment(b, "A9") }

// BenchmarkRegistrySequential runs the whole experiment registry on one
// worker — the seed's original execution mode, kept as the baseline the
// parallel runner is measured against.
func BenchmarkRegistrySequential(b *testing.B) {
	benchRegistry(b, 1)
}

// BenchmarkRegistryParallel runs the whole registry through the bounded
// worker pool (one worker per CPU); output is byte-identical to the
// sequential run, only the wall clock changes.
func BenchmarkRegistryParallel(b *testing.B) {
	benchRegistry(b, hc3i.DefaultWorkers())
}

func benchRegistry(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		opts := hc3i.RunnerOptions{Workers: workers, Seed: uint64(i + 1), Quick: true}
		for _, r := range hc3i.RunExperiments(opts, nil) {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.ID, r.Err)
			}
		}
	}
}

// BenchmarkMatrixSlice runs one topology slice of the scenario matrix
// (every workload x failure x network combination under all four
// protocols) through the parallel runner.
func BenchmarkMatrixSlice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := hc3i.RunnerOptions{Workers: hc3i.DefaultWorkers(), Seed: uint64(i + 1), Quick: true}
		res, err := hc3i.RunMatrix(opts, "topology=2c")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("matrix produced no rows")
		}
	}
}

// BenchmarkMatrixSliceOracle runs the same 2c matrix slice with the
// protocol invariant oracle attached to every federation — the
// BenchmarkMatrixSlice pair prices the oracle's online checking
// (shadow-history patching at commits, delivery recording, pipe
// lockstep) so the checker's overhead is tracked and gated like any
// other path. Results are byte-identical to the plain slice; only the
// observation cost differs.
func BenchmarkMatrixSliceOracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := hc3i.RunnerOptions{Workers: hc3i.DefaultWorkers(), Seed: uint64(i + 1), Quick: true,
			Oracle: true}
		res, err := hc3i.RunMatrix(opts, "topology=2c")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("matrix produced no rows")
		}
	}
}

// BenchmarkChaosScenario runs one adversarial schedule (4 clusters,
// storm failure pattern, oracle attached) end-to-end: the chaos tier's
// unit of work, priced so seed-sweep budgets stay predictable.
func BenchmarkChaosScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := hc3i.RunnerOptions{Workers: 1, Seed: uint64(i + 1), Quick: true,
			ChaosSeed: uint64(i + 1)}
		res, err := hc3i.RunMatrix(opts, "tier=chaos,topology=4c,workload=uniform")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("chaos scenario produced no rows")
		}
	}
}

// BenchmarkEndToEndLarge measures simulator throughput at federation
// scale: 64 clusters of 2 nodes (128 protocol nodes, 64-entry DDVs) on
// a ring-plus-local traffic pattern, one full run per iteration. This
// is the configuration the DDV arena and the ladder queue are sized
// for: wide dependency vectors and a deep standing event population.
func BenchmarkEndToEndLarge(b *testing.B) {
	const nc = 64
	clusters := make([]hc3i.Cluster, nc)
	rates := make([][]float64, nc)
	for i := range clusters {
		clusters[i] = hc3i.Cluster{Name: fmt.Sprintf("c%d", i), Nodes: 2}
		rates[i] = make([]float64, nc)
		rates[i][i] = 120           // local chatter
		rates[i][(i+1)%nc] = 6      // ring neighbour
		rates[i][(i+nc/2)%nc] = 1.5 // a long-haul dependency
	}
	for i := 0; i < b.N; i++ {
		res, err := hc3i.Run(hc3i.Config{
			Clusters:     clusters,
			TotalTime:    1800e9, // half a virtual hour
			RatesPerHour: rates,
			StateSize:    64 << 10,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("empty run")
		}
		b.ReportMetric(float64(res.Events), "events/run")
	}
}

// BenchmarkEndToEndSimulation measures raw simulator throughput on the
// paper's base configuration: one full 2-cluster run per iteration.
func BenchmarkEndToEndSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := hc3i.Run(hc3i.Config{
			Clusters: []hc3i.Cluster{
				{Name: "c0", Nodes: 8},
				{Name: "c1", Nodes: 8},
			},
			TotalTime:    3600e9, // one virtual hour
			RatesPerHour: [][]float64{{292, 14.5}, {1.1, 249.7}},
			CLCPeriods:   nil, // defaults
			StateSize:    256 << 10,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("empty run")
		}
		b.ReportMetric(float64(res.Events), "events/run")
	}
}

// BenchmarkWideSlice runs the wide-federation matrix tier's 64-cluster
// slice (ring workload, none+crash failures, HC3I with transitive
// piggybacking plus all three baselines) through the parallel runner —
// the macro counterpart of core's width-parameterized
// BenchmarkPiggybackMessage. The Dense variant re-runs it on the dense
// DDV wire encoding; results are byte-identical, only simulator cost
// differs. (Kept last in the file: its runs allocate tens of MB each,
// and the GC debt would otherwise bleed into the benchmarks after it.)
func BenchmarkWideSlice(b *testing.B) {
	benchWideSlice(b, false, 1)
}

// BenchmarkWideSliceDense is the dense-wire reference run of the same
// slice.
func BenchmarkWideSliceDense(b *testing.B) {
	benchWideSlice(b, true, 1)
}

// BenchmarkWideSliceParallel runs the identical 64-cluster slice with
// every federation split across 4 conservative-window engines
// (results are byte-identical to BenchmarkWideSlice; the pair prices
// the window-barrier machinery). The speedup is hardware-bound: on a
// single-CPU runner the barrier hand-offs are pure overhead and this
// benchmark runs slower than the sequential pair; the parallel path
// pays off only when the shard engines get their own cores.
func BenchmarkWideSliceParallel(b *testing.B) {
	benchWideSlice(b, false, 4)
}

func benchWideSlice(b *testing.B, dense bool, shards int) {
	for i := 0; i < b.N; i++ {
		opts := hc3i.RunnerOptions{
			Workers: hc3i.DefaultWorkers(), Seed: uint64(i + 1), Quick: true,
			DenseDDVWire: dense, Shards: shards,
		}
		res, err := hc3i.RunMatrix(opts, "tier=wide,topology=64c")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("wide slice produced no rows")
		}
	}
}

// BenchmarkWideSlice1024 runs the widest matrix rung — 1024 clusters,
// 2048 protocol nodes, 1024-entry DDVs, both wide failure patterns
// under all four protocols — as a real benchmark rather than the
// smoke-only run it used to be. This is the configuration wire
// batching, the chunk-strided DDV kernels and the incremental GC scan
// exist for; the Parallel variant splits every federation across 4
// conservative-window engines (byte-identical output; on few-core
// runners the barriers are overhead, on real cores they pay off).
func BenchmarkWideSlice1024(b *testing.B) {
	benchWideSlice1024(b, 1)
}

// BenchmarkWideSlice1024Parallel is the 4-shard leg of the same rung.
func BenchmarkWideSlice1024Parallel(b *testing.B) {
	benchWideSlice1024(b, 4)
}

func benchWideSlice1024(b *testing.B, shards int) {
	for i := 0; i < b.N; i++ {
		opts := hc3i.RunnerOptions{
			Workers: hc3i.DefaultWorkers(), Seed: uint64(i + 1), Quick: true,
			Shards: shards,
		}
		res, err := hc3i.RunMatrix(opts, "tier=wide,topology=1024c")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("1024c slice produced no rows")
		}
	}
}

// BenchmarkPerMessage256 / BenchmarkPerMessage1024 price one
// application message end-to-end (simulation cost per app message,
// protocol and piggybacking included) on the sparse ring pattern at
// the two widest scales. The pair is the flatness gate for wire
// batching: the reported ns/msg at 1024 clusters should stay within
// ~1.3x of the 256-cluster figure — without batching every same-pipe
// message pays its own schedule and codec pass and the ratio drifts
// with width.
func BenchmarkPerMessage256(b *testing.B)  { benchPerMessage(b, 256) }
func BenchmarkPerMessage1024(b *testing.B) { benchPerMessage(b, 1024) }

func benchPerMessage(b *testing.B, nc int) {
	clusters := make([]hc3i.Cluster, nc)
	rates := make([][]float64, nc)
	for i := range clusters {
		clusters[i] = hc3i.Cluster{Name: fmt.Sprintf("c%d", i), Nodes: 2}
		rates[i] = make([]float64, nc)
		rates[i][i] = 120           // local chatter
		rates[i][(i+1)%nc] = 6      // ring neighbour
		rates[i][(i+nc/2)%nc] = 1.5 // a long-haul dependency
	}
	b.ResetTimer()
	var msgs uint64
	for i := 0; i < b.N; i++ {
		res, err := hc3i.Run(hc3i.Config{
			Clusters:      clusters,
			TotalTime:     7200e9, // two virtual hours: messages amortize the O(width^2) federation setup
			RatesPerHour:  rates,
			StateSize:     64 << 10,
			TransitiveDDV: true,
			Seed:          uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.AppMessages {
			for _, v := range row {
				msgs += v
			}
		}
		b.ReportMetric(float64(res.Events), "events/run")
	}
	if msgs == 0 {
		b.Fatal("no application messages sent")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(msgs), "ns/msg")
}
