// Command hc3isim runs one HC3I federation simulation from the three
// configuration files of the paper's simulator (§5.1): a topology
// file, an application file and a timers file.
//
// Usage:
//
//	hc3isim -topology topo.conf -application app.conf -timers timers.conf \
//	        [-seed 1] [-protocol hc3i] [-trace info] [-mtbf-failures]
//
// With no flags it runs the paper's §5.2 configuration (2 clusters of
// 100 nodes, Table 1 traffic, 30-minute CLC timers) and prints the
// statistics the paper's simulator reports at its lowest trace level.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/app"
	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		topoPath  = flag.String("topology", "", "topology file (default: paper §5.2)")
		appPath   = flag.String("application", "", "application file (default: paper Table 1)")
		timerPath = flag.String("timers", "", "timers file (default: 30m CLCs, no GC)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		protoName = flag.String("protocol", "hc3i", "protocol: hc3i|force-all|independent|global-coordinated|hier-coordinated|pessimistic-log")
		trace     = flag.String("trace", "off", "trace level: off|info|debug|all")
		mtbf      = flag.Bool("mtbf-failures", false, "inject failures at the topology's MTBF")
		transit   = flag.Bool("transitive", false, "piggyback whole DDVs (transitive dependency tracking)")
		ringGC    = flag.Bool("ring-gc", false, "use the distributed ring garbage collector")
		replicas  = flag.Int("replicas", 1, "stable-storage replication degree")
		dumpStats = flag.Bool("stats", false, "dump every raw statistic")
	)
	flag.Parse()
	if err := run(*topoPath, *appPath, *timerPath, *seed, *protoName, *trace,
		*mtbf, *transit, *ringGC, *replicas, *dumpStats); err != nil {
		fmt.Fprintln(os.Stderr, "hc3isim:", err)
		os.Exit(1)
	}
}

func run(topoPath, appPath, timerPath string, seed uint64, protoName, trace string,
	mtbf, transit, ringGC bool, replicas int, dumpStats bool) error {

	fed := topology.Paper2Clusters()
	if topoPath != "" {
		var err error
		fed, err = config.LoadTopologyFile(topoPath)
		if err != nil {
			return err
		}
	}
	wl := app.PaperTable1()
	if appPath != "" {
		var err error
		wl, err = config.LoadWorkloadFile(appPath, fed.NumClusters())
		if err != nil {
			return err
		}
	}
	timers := &config.Timers{GCPeriod: sim.Forever, DetectionDelay: 2 * sim.Second}
	timers.CLCPeriods = make([]sim.Duration, fed.NumClusters())
	for i := range timers.CLCPeriods {
		timers.CLCPeriods[i] = 30 * sim.Minute
	}
	if timerPath != "" {
		var err error
		timers, err = config.LoadTimersFile(timerPath, fed.NumClusters())
		if err != nil {
			return err
		}
	}
	level, err := sim.ParseTraceLevel(trace)
	if err != nil {
		return err
	}

	opts := federation.Options{
		Topology:       fed,
		Workload:       wl,
		CLCPeriods:     timers.CLCPeriods,
		GCPeriod:       timers.GCPeriod,
		DetectionDelay: timers.DetectionDelay,
		Seed:           seed,
		MTBFFailures:   mtbf,
		Transitive:     transit,
		RingGC:         ringGC,
		Replicas:       replicas,
	}
	if level > sim.TraceOff {
		opts.TraceWriter = os.Stderr
		opts.TraceLevel = level
	}
	switch protoName {
	case "hc3i":
	case "force-all":
		opts.NodeFactory = modeFactory(core.ModeForceAll)
	case "independent":
		opts.NodeFactory = modeFactory(core.ModeIndependent)
	case "global-coordinated":
		opts.NodeFactory = func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewGlobalCoordinated(c, e, h)
		}
	case "hier-coordinated":
		opts.NodeFactory = func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewHierCoord(c, e, h)
		}
	case "pessimistic-log":
		opts.NodeFactory = func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
			return baseline.NewPessimisticLog(c, e, h)
		}
	default:
		return fmt.Errorf("unknown protocol %q", protoName)
	}

	f, err := federation.New(opts)
	if err != nil {
		return err
	}
	res, err := f.Run()
	if err != nil {
		return err
	}
	report(res, fed.NumClusters())
	if dumpStats {
		fmt.Println()
		fmt.Print(res.Stats.Dump())
	}
	return nil
}

func modeFactory(m core.ProtocolMode) federation.NodeFactory {
	return func(c core.Config, e core.Env, h core.AppHooks) federation.ProtocolNode {
		c.Mode = m
		return core.NewNode(c, e, h)
	}
}

func report(res *federation.Result, clusters int) {
	fmt.Printf("simulated %v of execution (%d events, %d failures)\n\n",
		res.EndTime, res.Events, res.Failures)

	fmt.Println("application messages (Table 1 format):")
	fmt.Printf("  %-10s %-10s %s\n", "sender", "receiver", "count")
	for i := 0; i < clusters; i++ {
		for j := 0; j < clusters; j++ {
			if res.AppMsgs[i][j] > 0 {
				fmt.Printf("  cluster %-2d cluster %-2d %d\n", i, j, res.AppMsgs[i][j])
			}
		}
	}

	fmt.Println("\ncluster-level checkpoints:")
	fmt.Printf("  %-10s %-9s %-9s %-7s %-8s %s\n",
		"cluster", "unforced", "forced", "total", "stored", "rollbacks")
	for _, c := range res.Clusters {
		fmt.Printf("  cluster %-2d %-9d %-9d %-7d %-8d %d\n",
			c.Cluster, c.Unforced, c.Forced, c.Total(), c.Stored, c.Rollbacks)
	}

	if len(res.GCRounds) > 0 {
		fmt.Println("\ngarbage collections (stored CLCs before -> after):")
		for _, r := range res.GCRounds {
			fmt.Printf("  at %-12v", r.At)
			for c := range r.Before {
				fmt.Printf("  c%d: %d->%d", c, r.Before[c], r.After[c])
			}
			fmt.Println()
		}
	}
	fmt.Printf("\nmax logged inter-cluster messages on any node: %d\n", res.MaxLoggedMessages)
}
