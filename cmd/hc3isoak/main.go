// Command hc3isoak is the continuous chaos soak service: it sweeps
// adversarial schedules (one seed = one replayable schedule) across
// the chaos-tier scenario grid with the protocol invariant oracle
// attached, journals every completed seed as JSONL, and checkpoints
// its cursor so the sweep survives kills and restarts.
//
// Usage:
//
//	hc3isoak -state soak/ -seeds 5000             # sweep 5000 seeds per scenario
//	hc3isoak -state soak/ -seeds 5000             # run again: resumes where it left off
//	hc3isoak -state soak/ -filter tier=chaos,topology=4c -shards 4
//	hc3isoak -state soak/ -seeds 100 -tee         # stream records to stdout too
//	hc3isoak -state soak/ -verify                 # audit the ledger, change nothing
//
// Durability: the journal (journal.jsonl) is the source of truth — a
// seed is done exactly when its record line is fully on disk. The
// checkpoint (state.json) is an atomically-replaced cursor over the
// journal. kill -9 at any instant loses at most the runs that were in
// flight; on restart the journal tail is merged back (never re-run,
// never double-counted) and the sweep continues at the first seed
// without a record. SIGTERM/SIGINT drain gracefully: in-flight runs
// finish and are journaled, then the service checkpoints and exits.
//
// Failures: a violated invariant is journaled with the check name and
// the exact replay command; unless -no-minimize, the failing schedule
// is first shrunk to the shortest reproducing perturbation prefix
// (replayable via -chaos-ops), so the record's repro is minimal.
// Wedged runs are killed by the -run-timeout watchdog and journaled as
// "wedged". A panicking run is contained to its worker and journaled.
//
// Exit codes: 0 = sweep (or drain) finished with a clean ledger;
// 1 = the ledger holds failures; 2 = configuration or state error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/soak"
)

func main() {
	var (
		stateDir = flag.String("state", "", "state directory (journal.jsonl + state.json); required")
		seeds    = flag.Uint64("seeds", 1000, "seed budget per sweep unit (seeds 1..N; raising it on resume extends the sweep)")
		filter   = flag.String("filter", "tier=chaos", "chaos-tier scenario filter (hc3ibench -filter syntax)")
		shards   = flag.Int("shards", 1, "also a sweep dimension: run every scenario across this many conservative-window engines (1 = single-engine reference)")
		parallel = flag.Int("parallel", experiments.DefaultWorkers(), "max runs in flight (1 = sequential)")
		full     = flag.Bool("full", false, "paper-scale runs instead of quick-scale (orders of magnitude slower per seed)")
		timeout  = flag.Duration("run-timeout", 2*time.Minute, "wall-clock watchdog per run; a wedged run is journaled as \"wedged\" (0 disables — a wedged run then stalls a worker forever)")
		ckptN    = flag.Int("checkpoint-every", 32, "checkpoint the cursor after this many journaled records")
		noMin    = flag.Bool("no-minimize", false, "journal violations with the full schedule instead of minimizing to the shortest reproducing prefix")
		tee      = flag.Bool("tee", false, "also stream every record to stdout as JSONL")
		verify   = flag.Bool("verify", false, "audit the state dir: re-derive the ledger from the journal, check it against the checkpoint, print the summary, change nothing")
		dieAfter = flag.Int("die-after", 0, "testing hook: SIGKILL the whole process right after journaling N records this session (exercises the crash-recovery path)")
	)
	flag.Parse()

	if *stateDir == "" {
		fmt.Fprintln(os.Stderr, "hc3isoak: -state is required")
		os.Exit(2)
	}

	if *verify {
		st, err := soak.Verify(*stateDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hc3isoak: verify:", err)
			os.Exit(2)
		}
		fmt.Printf("hc3isoak: ledger consistent: %d seeds journaled, %d violations, %d wedged, %d panics\n",
			st.Completed, st.Violations, st.Wedged, st.Panics)
		if st.Violations+st.Wedged+st.Panics > 0 {
			os.Exit(1)
		}
		return
	}

	scs, err := experiments.MatrixScenarios(*filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hc3isoak:", err)
		os.Exit(2)
	}
	var units []soak.Unit
	for _, sc := range scs {
		if !sc.ChaosTier() {
			fmt.Fprintf(os.Stderr, "hc3isoak: scenario %s is not on the chaos tier (soak sweeps adversarial schedules; filter with tier=chaos)\n", sc.Name())
			os.Exit(2)
		}
		units = append(units, soak.Unit{Scenario: sc, Shards: *shards})
	}

	opts := soak.Options{
		Dir:             *stateDir,
		Units:           units,
		SeedsPerUnit:    *seeds,
		Quick:           !*full,
		Workers:         *parallel,
		RunTimeout:      *timeout,
		CheckpointEvery: *ckptN,
		Minimize:        !*noMin,
		DieAfter:        *dieAfter,
		Log:             os.Stderr,
	}
	if *tee {
		opts.Tee = soak.NewWriterExporter(os.Stdout)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sum, err := soak.Run(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hc3isoak:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "hc3isoak: %d seeds journaled (%d violations, %d wedged, %d panics), %d remaining\n",
		sum.Completed, sum.Violations, sum.Wedged, sum.Panics, sum.Remaining)
	for _, f := range sum.Failures {
		fmt.Fprintf(os.Stderr, "hc3isoak: FAIL %s seed %d [%s] %s\n  replay: %s\n",
			f.Scenario, f.Seed, f.Status, f.Check, f.Replay)
	}
	if sum.Violations+sum.Wedged+sum.Panics > 0 {
		os.Exit(1)
	}
}
