// Command hc3id is one HC3I federation node as an OS process: the
// "real system" the paper's §7 asks for. Every daemon loads the same
// federation config file, hosts exactly one protocol node over the
// hardened TCP transport, and journals its protocol observations
// (commits, rollbacks, deliveries, GC drops, control sends) as JSONL —
// the artifact `hc3itrace -journal` pretty-prints and the offline
// oracle replays for invariant violations.
//
// Usage:
//
//	hc3id -config fed.json -node c0n1 -journal c0n1.jsonl
//	      [-duration 10s] [-recover auto|yes|no] [-trace]
//
// Config file format (JSON):
//
//	{
//	  "clusters": [3, 2],
//	  "addrs": {
//	    "c0n0": "127.0.0.1:7700", "c0n1": "127.0.0.1:7701",
//	    "c0n2": "127.0.0.1:7702",
//	    "c1n0": "127.0.0.1:7710", "c1n1": "127.0.0.1:7711"
//	  },
//	  "clc_period_ms": 50,
//	  "gc_period_ms": 0,
//	  "replicas": 1,
//	  "workload": {"period_ms": 5, "inter_prob": 0.3, "size": 256}
//	}
//
// A SIGTERM (or -duration expiring) drains cleanly: the event loop is
// quiesced, a final "stop" journal line records the counters, and the
// transport shuts down. A SIGKILL costs at most one torn journal line,
// which reopening and replay both tolerate.
//
// Crash recovery: restart the daemon with the same -journal path and
// -recover auto (the default; a non-empty journal means this is a
// rebirth). The fresh incarnation boots with lost state, announces
// itself to its cluster (Hello), and a surviving peer runs the failure
// detector — triggering the protocol's rollback, state recovery from
// the replica holders, and resumption.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/runtime"
	"repro/internal/topology"
)

func main() {
	var (
		configPath  = flag.String("config", "", "federation config file (required)")
		nodeName    = flag.String("node", "", "node to host, cXnY form (required)")
		journalPath = flag.String("journal", "", "JSONL event journal path (required)")
		duration    = flag.Duration("duration", 0, "exit cleanly after this long (0 = run until SIGTERM)")
		recoverMode = flag.String("recover", "auto", "crash-recovery boot: auto|yes|no (auto = journal non-empty)")
		trace       = flag.Bool("trace", false, "protocol trace on stderr")
	)
	flag.Parse()
	if err := run(*configPath, *nodeName, *journalPath, *duration, *recoverMode, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "hc3id:", err)
		os.Exit(1)
	}
}

func run(configPath, nodeName, journalPath string, duration time.Duration, recoverMode string, trace bool) error {
	if configPath == "" || nodeName == "" || journalPath == "" {
		return fmt.Errorf("-config, -node and -journal are required")
	}
	fed, err := runtime.LoadFederationFile(configPath)
	if err != nil {
		return err
	}
	self, err := topology.ParseNodeID(nodeName)
	if err != nil {
		return err
	}
	addrs, err := fed.AddrMap()
	if err != nil {
		return err
	}
	if _, ok := addrs[self]; !ok {
		return fmt.Errorf("node %v not in the federation", self)
	}

	recovering := false
	switch recoverMode {
	case "yes":
		recovering = true
	case "no":
	case "auto":
		if fi, err := os.Stat(journalPath); err == nil && fi.Size() > 0 {
			recovering = true
		}
	default:
		return fmt.Errorf("bad -recover %q (want auto|yes|no)", recoverMode)
	}

	journal, err := runtime.OpenJournal(journalPath)
	if err != nil {
		return err
	}

	cfg := fed.RuntimeConfig([]topology.NodeID{self})
	cfg.Recovering = recovering
	cfg.Journal = journal
	cfg.Transport = runtime.NewTCPTransportWith(runtime.TCPConfig{Addrs: addrs})
	if trace {
		cfg.Trace = os.Stderr
	}

	live, err := runtime.Start(cfg)
	if err != nil {
		journal.Close()
		return err
	}
	mode := "fresh"
	if recovering {
		mode = "crash-recovery"
	}
	fmt.Fprintf(os.Stderr, "hc3id: %v up on %s (%s boot), journal %s\n",
		self, addrs[self], mode, journalPath)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	var timeout <-chan time.Time
	if duration > 0 {
		timeout = time.After(duration)
	}
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "hc3id: %v draining on %v\n", self, sig)
	case <-timeout:
		fmt.Fprintf(os.Stderr, "hc3id: %v draining after %v\n", self, duration)
	}

	// Clean drain: barrier through the event loop so in-flight work
	// applies, then stop (which journals the final counters) and close.
	live.Quiesce()
	live.Stop()
	if err := journal.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
