// Command hc3itrace runs a small federation with full tracing and
// pretty-prints the protocol's behaviour — the paper simulator's
// "higher trace level" where "we can observe each node time-stamped
// action" (§5.1). It is the quickest way to watch the protocol work:
// two-phase commits, piggybacked SNs, forced CLCs, rollback cascades
// and garbage collections, all annotated.
//
// Usage:
//
//	hc3itrace [-clusters 2] [-nodes 3] [-minutes 90] [-crash 45]
//	          [-level debug] [-seed 1]
//
// With -journal it switches to the live runtime's offline mode: load
// the per-node JSONL journals of a cmd/hc3id federation (a directory of
// *.jsonl files or one file), merge them in timestamp order, optionally
// pretty-print the merged timeline (-v), replay them through the
// protocol oracle and print the report. Exit status 1 means the
// journals violate a protocol invariant:
//
//	hc3itrace -journal ./run-dir          # report only
//	hc3itrace -journal ./run-dir -v       # timeline + report
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/app"
	"repro/internal/federation"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		clusters = flag.Int("clusters", 2, "number of clusters")
		nodes    = flag.Int("nodes", 3, "nodes per cluster")
		minutes  = flag.Int("minutes", 90, "virtual minutes to simulate")
		crashMin = flag.Int("crash", 0, "crash a node at this virtual minute (0 = none)")
		level    = flag.String("level", "debug", "trace level: info|debug|all")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		gcMin    = flag.Int("gc", 0, "garbage collection period in minutes (0 = off)")
		journal  = flag.String("journal", "", "replay live journals (a directory of *.jsonl or one file) instead of simulating")
		verbose  = flag.Bool("v", false, "with -journal: pretty-print the merged timeline")
	)
	flag.Parse()
	if *journal != "" {
		if err := runJournal(*journal, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "hc3itrace:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*clusters, *nodes, *minutes, *crashMin, *gcMin, *level, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "hc3itrace:", err)
		os.Exit(1)
	}
}

// runJournal merges, pretty-prints and oracle-replays live journals.
func runJournal(path string, verbose bool) error {
	paths := []string{path}
	if fi, err := os.Stat(path); err != nil {
		return err
	} else if fi.IsDir() {
		paths, err = filepath.Glob(filepath.Join(path, "*.jsonl"))
		if err != nil {
			return err
		}
		if len(paths) == 0 {
			return fmt.Errorf("no *.jsonl journals in %s", path)
		}
		sort.Strings(paths)
	}

	perNode := make([][]oracle.Event, 0, len(paths))
	for _, p := range paths {
		evs, err := oracle.ReadJournalFile(p)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %6d events\n", filepath.Base(p), len(evs))
		perNode = append(perNode, evs)
	}
	merged := oracle.MergeEvents(perNode...)
	if verbose && len(merged) > 0 {
		fmt.Println()
		t0 := merged[0].T
		for _, ev := range merged {
			fmt.Printf("[%12s] %-6s %s\n",
				time.Duration(ev.T-t0).Truncate(time.Microsecond), ev.Node, describe(ev))
		}
	}
	rep := oracle.Replay(merged)
	fmt.Printf("\n%s\n", rep.Summary())
	if !rep.Clean() {
		os.Exit(1)
	}
	return nil
}

// describe renders one journal event as a one-line annotation.
func describe(ev oracle.Event) string {
	switch ev.Kind {
	case "start":
		mode := "fresh boot"
		if ev.Recovering {
			mode = "CRASH-RECOVERY boot"
		}
		return fmt.Sprintf("%s, clusters %v, mode %s", mode, ev.Clusters, ev.Mode)
	case "commit":
		forced := ""
		if ev.Forced {
			forced = " (forced)"
		}
		return fmt.Sprintf("commit CLC %d%s epoch %d ddv %v", ev.Seq, forced, ev.Epoch, ev.DDV)
	case "rollback":
		return fmt.Sprintf("ROLLBACK to CLC %d, new epoch %d, ddv %v", ev.Seq, ev.Epoch, ev.DDV)
	case "deliver":
		return fmt.Sprintf("deliver from %s (epoch %d, send SN %d) at epoch %d SN %d",
			ev.Src, ev.SrcEpoch, ev.SendSN, ev.RecvEpoch, ev.RecvSN)
	case "gcdrop":
		return fmt.Sprintf("gc drop at thresholds %v", ev.MinSNs)
	case "send":
		return fmt.Sprintf("send %s -> %s", ev.Msg, ev.Dst)
	case "drop":
		return fmt.Sprintf("DROPPED %s -> %s", ev.Msg, ev.Dst)
	case "hello":
		if ev.Src != "" {
			return fmt.Sprintf("hello from rejoining %s", ev.Src)
		}
		return fmt.Sprintf("hello (rejoin announcement) -> %s", ev.Dst)
	case "suspect":
		return "suspected unreachable by the transport"
	case "stop":
		stats := make([]string, 0, len(ev.Stats))
		for k, v := range ev.Stats {
			stats = append(stats, fmt.Sprintf("%s=%d", k, v))
		}
		sort.Strings(stats)
		return "clean stop; " + strings.Join(stats, " ")
	default:
		return ev.Kind
	}
}

func run(clusters, nodes, minutes, crashMin, gcMin int, level string, seed uint64) error {
	lvl, err := sim.ParseTraceLevel(level)
	if err != nil {
		return err
	}
	if lvl == sim.TraceOff {
		lvl = sim.TraceDebug
	}
	fed := topology.Small(clusters, nodes)
	wl := app.Uniform(clusters, 400, 20, sim.Duration(minutes)*sim.Minute)
	wl.StateSize = 256 << 10

	periods := make([]sim.Duration, clusters)
	for i := range periods {
		periods[i] = 15 * sim.Minute
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	opts := federation.Options{
		Topology:    fed,
		Workload:    wl,
		CLCPeriods:  periods,
		Seed:        seed,
		TraceWriter: w,
		TraceLevel:  lvl,
	}
	if gcMin > 0 {
		opts.GCPeriod = sim.Duration(gcMin) * sim.Minute
	}
	if crashMin > 0 {
		opts.Crashes = []federation.Crash{{
			At:   sim.Time(sim.Duration(crashMin) * sim.Minute),
			Node: topology.NodeID{Cluster: 0, Index: nodes - 1},
		}}
	}
	f, err := federation.New(opts)
	if err != nil {
		return err
	}
	res, err := f.Run()
	if err != nil {
		return err
	}
	w.Flush()
	fmt.Printf("\n-- run finished at %v --\n", res.EndTime)
	for _, c := range res.Clusters {
		fmt.Printf("cluster %d: %d unforced + %d forced CLCs, %d rollbacks, %d stored\n",
			c.Cluster, c.Unforced, c.Forced, c.Rollbacks, c.Stored)
	}
	return nil
}
