// Command hc3itrace runs a small federation with full tracing and
// pretty-prints the protocol's behaviour — the paper simulator's
// "higher trace level" where "we can observe each node time-stamped
// action" (§5.1). It is the quickest way to watch the protocol work:
// two-phase commits, piggybacked SNs, forced CLCs, rollback cascades
// and garbage collections, all annotated.
//
// Usage:
//
//	hc3itrace [-clusters 2] [-nodes 3] [-minutes 90] [-crash 45]
//	          [-level debug] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/app"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		clusters = flag.Int("clusters", 2, "number of clusters")
		nodes    = flag.Int("nodes", 3, "nodes per cluster")
		minutes  = flag.Int("minutes", 90, "virtual minutes to simulate")
		crashMin = flag.Int("crash", 0, "crash a node at this virtual minute (0 = none)")
		level    = flag.String("level", "debug", "trace level: info|debug|all")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		gcMin    = flag.Int("gc", 0, "garbage collection period in minutes (0 = off)")
	)
	flag.Parse()
	if err := run(*clusters, *nodes, *minutes, *crashMin, *gcMin, *level, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "hc3itrace:", err)
		os.Exit(1)
	}
}

func run(clusters, nodes, minutes, crashMin, gcMin int, level string, seed uint64) error {
	lvl, err := sim.ParseTraceLevel(level)
	if err != nil {
		return err
	}
	if lvl == sim.TraceOff {
		lvl = sim.TraceDebug
	}
	fed := topology.Small(clusters, nodes)
	wl := app.Uniform(clusters, 400, 20, sim.Duration(minutes)*sim.Minute)
	wl.StateSize = 256 << 10

	periods := make([]sim.Duration, clusters)
	for i := range periods {
		periods[i] = 15 * sim.Minute
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	opts := federation.Options{
		Topology:    fed,
		Workload:    wl,
		CLCPeriods:  periods,
		Seed:        seed,
		TraceWriter: w,
		TraceLevel:  lvl,
	}
	if gcMin > 0 {
		opts.GCPeriod = sim.Duration(gcMin) * sim.Minute
	}
	if crashMin > 0 {
		opts.Crashes = []federation.Crash{{
			At:   sim.Time(sim.Duration(crashMin) * sim.Minute),
			Node: topology.NodeID{Cluster: 0, Index: nodes - 1},
		}}
	}
	f, err := federation.New(opts)
	if err != nil {
		return err
	}
	res, err := f.Run()
	if err != nil {
		return err
	}
	w.Flush()
	fmt.Printf("\n-- run finished at %v --\n", res.EndTime)
	for _, c := range res.Clusters {
		fmt.Printf("cluster %d: %d unforced + %d forced CLCs, %d rollbacks, %d stored\n",
			c.Cluster, c.Unforced, c.Forced, c.Rollbacks, c.Stored)
	}
	return nil
}
