// Command hc3ibench regenerates the paper's evaluation — every table
// and figure (T1, F6-F9, T2, T3) plus the ablations (A1-A9) — and runs
// the scenario matrix: dozens of topology x workload x failure x
// network combinations, each under HC3I and all three baseline
// protocols.
//
// Usage:
//
//	hc3ibench                 # run everything at the paper's scale
//	hc3ibench -quick          # reduced scale (seconds instead of minutes)
//	hc3ibench -parallel 8     # keep 8 simulated federations in flight
//	hc3ibench -run F6,F7      # a subset of the registry
//	hc3ibench -matrix         # run the full scenario matrix instead
//	hc3ibench -matrix -filter topology=8c,failure=churn
//	hc3ibench -matrix -filter tier=wide            # 64-256 cluster tier
//	hc3ibench -matrix -filter tier=wide -dense-ddv # dense reference wire
//	hc3ibench -oracle -matrix                      # invariant-checked matrix
//	hc3ibench -matrix -shards 4                    # conservative-window parallel engines
//	hc3ibench -matrix -filter tier=chaos -chaos-seeds 50   # adversarial tier
//	hc3ibench -matrix -filter tier=chaos -chaos-seed 1337  # replay one schedule
//	hc3ibench -matrix -filter tier=chaos -chaos-seed 1337 -chaos-ops 12  # minimized prefix
//	hc3ibench -matrix -filter tier=trace                   # open-loop arrivals on trace-driven links
//	hc3ibench -matrix -filter tier=trace -trace-file my_link.jsonl
//	hc3ibench -matrix -run-timeout 2m                      # watchdog wedged runs
//
// A failing chaos sweep names the violated check and the failing seed,
// and prints the exact replay command, so a red nightly run is one
// paste away from a local repro.
//	hc3ibench -list           # list the registry and the matrix axes
//	hc3ibench -o results.txt  # also write the output to a file
//	hc3ibench -csv out/       # one <ID>.csv per table for plotting
//	hc3ibench -quick -matrix -cpuprofile cpu.pprof -memprofile heap.pprof
//
// Parallel runs are byte-identical to sequential ones: every federation
// is an isolated deterministic simulation and results are collected in
// input order.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/hc3i"
	"repro/internal/experiments"
	"repro/internal/netsim"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced scale (small clusters, short runs)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", hc3i.DefaultWorkers(),
			"max federations simulated concurrently (1 = sequential; output is identical either way)")
		runID    = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		matrix   = flag.Bool("matrix", false, "run the scenario matrix instead of the registry")
		filter   = flag.String("filter", "", "matrix filter, e.g. topology=2c,failure=churn")
		list     = flag.Bool("list", false, "list experiments and matrix axes, then exit")
		out      = flag.String("o", "", "also write results to this file")
		csvDir   = flag.String("csv", "", "write one <ID>.csv per table into this directory")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
		denseDDV = flag.Bool("dense-ddv", false,
			"transport dependency vectors in the dense wire encoding (identical results; for A/B timing the delta encoding)")
		unbatched = flag.Bool("unbatched-wire", false,
			"schedule every inter-cluster delivery as its own engine event instead of batching same-pipe same-tick messages (identical results; for A/B timing the batched wire)")
		oracleOn = flag.Bool("oracle", false,
			"attach the online protocol invariant checker to every run (identical results; violations fail the run)")
		chaosSeed = flag.Uint64("chaos-seed", 0,
			"replay one adversarial schedule on the chaos tier (0 = derive from -seed)")
		chaosSeeds = flag.Int("chaos-seeds", 1,
			"how many consecutive adversarial schedules each chaos-tier scenario runs")
		chaosOps = flag.Int("chaos-ops", 0,
			"cap every chaos schedule at its first N perturbation actions (0 = unlimited; minimized repro commands set it)")
		traceFile = flag.String("trace-file", "",
			"JSONL link schedule for the trace tier (one {\"t_ms\",\"latency_ms\",\"jitter_ms\",\"loss\"} object per line; default: the embedded mobile-broadband fixture)")
		runTimeout = flag.Duration("run-timeout", 0,
			"wall-clock watchdog per federation run: a wedged run is killed and reported instead of hanging (0 = none)")
		shards = flag.Int("shards", 1,
			"split every federation across this many conservative-window event engines (1 = single-engine reference; classic/wide results are byte-identical)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range hc3i.Experiments() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Description)
		}
		fmt.Println("\nscenario matrix axes (-matrix, filter with -filter dim=value,...):")
		fmt.Print(hc3i.MatrixAxes())
		return
	}

	// Usage errors must fire before -o truncates an existing file.
	if *filter != "" && !*matrix {
		fmt.Fprintln(os.Stderr, "hc3ibench: -filter only applies with -matrix")
		os.Exit(1)
	}
	if (*chaosSeed != 0 || *chaosSeeds != 1) && !*matrix {
		fmt.Fprintln(os.Stderr, "hc3ibench: -chaos-seed/-chaos-seeds only apply with -matrix (filter the chaos tier: -filter tier=chaos)")
		os.Exit(1)
	}
	if *chaosSeeds < 1 {
		fmt.Fprintln(os.Stderr, "hc3ibench: -chaos-seeds must be >= 1")
		os.Exit(1)
	}
	if *chaosOps < 0 {
		fmt.Fprintln(os.Stderr, "hc3ibench: -chaos-ops must be >= 0 (0 = unlimited)")
		os.Exit(1)
	}
	if *chaosOps != 0 && !*matrix {
		fmt.Fprintln(os.Stderr, "hc3ibench: -chaos-ops only applies with -matrix (it truncates chaos-tier schedules)")
		os.Exit(1)
	}
	if *traceFile != "" {
		if !*matrix {
			fmt.Fprintln(os.Stderr, "hc3ibench: -trace-file only applies with -matrix (filter the trace tier: -filter tier=trace)")
			os.Exit(1)
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			os.Exit(1)
		}
		_, err = netsim.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			os.Exit(1)
		}
	}
	if *runTimeout < 0 {
		fmt.Fprintln(os.Stderr, "hc3ibench: -run-timeout must be >= 0 (0 = no watchdog)")
		os.Exit(1)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "hc3ibench: -shards must be >= 1")
		os.Exit(1)
	}
	if *runID != "" && *matrix {
		fmt.Fprintln(os.Stderr, "hc3ibench: -run selects registry experiments; it does not apply with -matrix (use -filter)")
		os.Exit(1)
	}
	if *matrix {
		if _, err := hc3i.MatrixScenarios(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			os.Exit(1)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = io.MultiWriter(os.Stdout, fh)
	}

	// Profiling hooks: perf work starts from a profile of the real
	// harness, not a guess (`go tool pprof hc3ibench <file>` reads the
	// output). exit flushes the profiles on every path — os.Exit skips
	// deferred writers.
	stopProfiles := startProfiles(*cpuProf, *memProf)
	defer stopProfiles()
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	mode := "paper scale"
	if *quick {
		mode = "quick scale"
	}
	opts := hc3i.RunnerOptions{Workers: *parallel, Seed: *seed, Quick: *quick, DenseDDVWire: *denseDDV,
		UnbatchedWire: *unbatched, Oracle: *oracleOn, ChaosSeed: *chaosSeed, ChaosSeeds: *chaosSeeds,
		ChaosOps: *chaosOps, TraceFile: *traceFile, RunTimeout: *runTimeout, Shards: *shards}
	fmt.Fprintf(w, "HC3I evaluation harness — %s, seed %d, %d worker(s)\n\n", mode, *seed, *parallel)

	emit := func(res *hc3i.ExperimentResult) {
		if *markdown {
			fmt.Fprintln(w, res.Markdown())
		} else {
			fmt.Fprint(w, res.Render())
			fmt.Fprintln(w)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "hc3ibench:", err)
				exit(1)
			}
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hc3ibench:", err)
				exit(1)
			}
		}
	}

	start := time.Now()
	if *matrix {
		res, err := hc3i.RunMatrix(opts, *filter)
		if err != nil {
			var cf *experiments.ChaosFailure
			if errors.As(err, &cf) {
				fmt.Fprintf(os.Stderr, "hc3ibench: chaos schedule violated the protocol:\n")
				fmt.Fprintf(os.Stderr, "  scenario: %s (%s)\n", cf.Scenario.Name(), cf.Protocol)
				fmt.Fprintf(os.Stderr, "  seed:     %d\n", cf.Seed)
				if cf.Shards > 1 {
					fmt.Fprintf(os.Stderr, "  shards:   %d\n", cf.Shards)
				}
				fmt.Fprintf(os.Stderr, "  check:    %s\n", cf.Check())
				fmt.Fprintf(os.Stderr, "  error:    %v\n", cf.Err)
				fmt.Fprintf(os.Stderr, "  replay:   %s\n", cf.ReplayCommand())
				exit(1)
			}
			fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			exit(1)
		}
		emit(res)
		fmt.Fprintf(w, "(%d rows, %.1fs wall)\n", len(res.Rows), time.Since(start).Seconds())
		return
	}

	var ids []string
	if *runID != "" {
		for _, id := range strings.Split(*runID, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	failed := 0
	for _, r := range hc3i.RunExperiments(opts, ids) {
		if r.Err != nil {
			fmt.Fprintf(w, "== %s FAILED: %v ==\n\n", r.ID, r.Err)
			failed++
			continue
		}
		emit(r.Result)
	}
	fmt.Fprintf(w, "(%.1fs wall)\n", time.Since(start).Seconds())
	if failed > 0 {
		exit(1)
	}
}

// startProfiles arms the requested CPU/heap profile writers and returns
// the function that flushes them. Calling the returned function more
// than once is safe.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hc3ibench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			}
		}
	}
}
