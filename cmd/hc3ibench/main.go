// Command hc3ibench regenerates the paper's evaluation: every table
// and figure (T1, F6-F9, T2, T3) plus the ablations (A1-A6), printing
// the same rows/series the paper reports.
//
// Usage:
//
//	hc3ibench                 # run everything at the paper's scale
//	hc3ibench -quick          # reduced scale (seconds instead of minutes)
//	hc3ibench -run F6,F7      # a subset
//	hc3ibench -list           # list the registry
//	hc3ibench -o results.txt  # also write the output to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/hc3i"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced scale (8-node clusters, 3h runs)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		runID    = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		out      = flag.String("o", "", "also write results to this file")
		csvDir   = flag.String("csv", "", "write one <ID>.csv per experiment into this directory")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	)
	flag.Parse()

	if *list {
		for _, e := range hc3i.Experiments() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	var ids []string
	if *runID == "" {
		for _, e := range hc3i.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*runID, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hc3ibench:", err)
			os.Exit(1)
		}
		defer fh.Close()
		w = io.MultiWriter(os.Stdout, fh)
	}

	mode := "paper scale (100-node clusters, 10h virtual)"
	if *quick {
		mode = "quick scale"
	}
	fmt.Fprintf(w, "HC3I evaluation harness — %s, seed %d\n\n", mode, *seed)

	failed := 0
	for _, id := range ids {
		start := time.Now()
		res, err := hc3i.RunExperiment(id, *seed, *quick)
		if err != nil {
			fmt.Fprintf(w, "== %s FAILED: %v ==\n\n", id, err)
			failed++
			continue
		}
		if *markdown {
			fmt.Fprintln(w, res.Markdown())
		} else {
			fmt.Fprint(w, res.Render())
			fmt.Fprintf(w, "(%.1fs wall)\n\n", time.Since(start).Seconds())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "hc3ibench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hc3ibench:", err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
