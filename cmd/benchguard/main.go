// Command benchguard gates allocation regressions: it parses `go test
// -bench -benchmem` output, compares allocs/op against a recorded
// snapshot (BENCH_baseline.json), and exits non-zero when any benchmark
// regressed beyond the tolerance. It can also write a new snapshot in
// the same schema, which PRs append (BENCH_pr<N>.json) rather than
// overwrite, so the allocation trajectory of the repo stays visible.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | tee bench.out
//	go run ./cmd/benchguard -baseline BENCH_baseline.json -input bench.out
//	go run ./cmd/benchguard -input bench.out -write BENCH_pr2.json -note "..."
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one snapshot entry, matching the BENCH_*.json schema.
type Benchmark struct {
	Name         string  `json:"name"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerRun float64 `json:"events_per_run,omitempty"`
	BPerOp       float64 `json:"B_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// Snapshot is the BENCH_*.json file layout.
type Snapshot struct {
	Recorded   string      `json:"recorded"`
	Go         string      `json:"go"`
	CPUs       int         `json:"cpus"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// procSuffix strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names ("BenchmarkFoo-8" -> "BenchmarkFoo").
var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... [no tests to run]"
		}
		b := Benchmark{Name: procSuffix.ReplaceAllString(fields[0], ""), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchguard: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "events/run":
				b.EventsPerRun = v
			}
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchguard: no benchmark lines found")
	}
	return out, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "snapshot JSON to compare against (empty = no gate)")
		inputPath    = flag.String("input", "-", "go test -bench output to parse (- = stdin)")
		writePath    = flag.String("write", "", "write the parsed results as a new snapshot JSON")
		note         = flag.String("note", "", "note recorded in the written snapshot")
		maxRegress   = flag.Float64("max-regress", 0.20, "tolerated fractional allocs/op regression")
		allocSlack   = flag.Float64("alloc-slack", 1.0, "absolute allocs/op slack on top of the fraction (absorbs one-off warmup allocations in short runs)")
	)
	flag.Parse()

	in := os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		fatal(err)
	}

	if *writePath != "" {
		snap := Snapshot{
			Recorded:   time.Now().UTC().Format("2006-01-02"),
			Go:         runtime.Version(),
			CPUs:       runtime.NumCPU(),
			Note:       *note,
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*writePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %s (%d benchmarks)\n", *writePath, len(got))
	}

	if *baselinePath == "" {
		return
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(err)
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}

	failed := 0
	compared := 0
	for _, b := range got {
		ref, ok := baseline[b.Name]
		if !ok {
			fmt.Printf("benchguard: %-40s new benchmark, no baseline (ok)\n", b.Name)
			continue
		}
		compared++
		limit := ref.AllocsPerOp*(1+*maxRegress) + *allocSlack
		verdict := "ok"
		if b.AllocsPerOp > limit {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("benchguard: %-40s allocs/op %10.1f -> %10.1f (limit %.1f) %s\n",
			b.Name, ref.AllocsPerOp, b.AllocsPerOp, limit, verdict)
	}
	if compared == 0 {
		fatal(fmt.Errorf("benchguard: nothing compared against %s", *baselinePath))
	}
	if failed > 0 {
		fatal(fmt.Errorf("benchguard: %d benchmark(s) regressed beyond %.0f%% allocs/op", failed, *maxRegress*100))
	}
	fmt.Printf("benchguard: %d benchmark(s) within budget\n", compared)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
