// Command benchguard gates performance regressions: it parses `go test
// -bench -benchmem` output (including repeated `-count=N` runs),
// compares allocs/op and — when asked — wall-clock ns/op against a
// recorded snapshot (BENCH_*.json), and exits non-zero when any
// benchmark regressed beyond tolerance. It can also write a new
// snapshot in the same schema, which PRs append (BENCH_pr<N>.json)
// rather than overwrite, so the performance trajectory of the repo
// stays visible.
//
// Allocation counts are deterministic, so they gate on a fixed
// fractional budget. Wall clock is noisy — especially on shared CI
// machines — so the wall gate is calibrated: run each benchmark
// several times (`-count=5`), and benchguard derives the variance band
// from the scatter it actually measured. A benchmark only fails when
// its mean exceeds the baseline by more than
//
//	max(wall-floor, wall-z * cv)
//
// where cv is the larger coefficient of variation of the current run
// and the recorded baseline. A quiet machine tightens the gate toward
// the floor; a noisy one loosens it instead of flaking. Past
// -wall-max-cv (default 0.25) the scatter rivals the mean and no
// per-benchmark verdict is meaningful: the wall gate is skipped for
// that benchmark, visibly, and written snapshots record the reason in
// wall_skip. -gate-wall-total still bounds the summed ns/op of every
// compared benchmark against the baseline sum, so the suite keeps an
// overall wall budget even when individual rungs are noise-exempt.
//
// Benchmarks whose baseline mean sits below -wall-min-ns (default
// 50ns) are exempt from the wall gate entirely: at that scale the
// measured stddev is a large fraction of the mean (e.g. ~9ns on a
// ~20ns DDV merge), so the 3-sigma band covers half the value and any
// verdict is noise. They still gate on allocs/op, which is
// deterministic at every scale.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem -count 5 ./... | tee bench.out
//	go run ./cmd/benchguard -baseline BENCH_pr2.json -input bench.out -gate-wall
//	go run ./cmd/benchguard -input bench.out -write BENCH_pr3.json -note "..."
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one snapshot entry, matching the BENCH_*.json schema.
// When the input held several runs of the same benchmark (-count=N),
// the recorded values are means across runs and NsStddev captures the
// wall-clock scatter used to calibrate future gates.
type Benchmark struct {
	Name         string  `json:"name"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsStddev     float64 `json:"ns_stddev,omitempty"`
	Samples      int     `json:"samples,omitempty"`
	EventsPerRun float64 `json:"events_per_run,omitempty"`
	BPerOp       float64 `json:"B_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	// WallSkip records, at snapshot time, why this benchmark's wall
	// clock cannot gate future runs ("noisy: cv 0.55 > 0.25") — the
	// skip is then visible in the recorded trajectory instead of a
	// silent verdict on noise. Allocs/op still gates.
	WallSkip string `json:"wall_skip,omitempty"`
}

// Snapshot is the BENCH_*.json file layout.
type Snapshot struct {
	Recorded   string      `json:"recorded"`
	Go         string      `json:"go"`
	CPUs       int         `json:"cpus"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// procSuffix strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names ("BenchmarkFoo-8" -> "BenchmarkFoo").
var procSuffix = regexp.MustCompile(`-\d+$`)

// sample is one parsed benchmark output line.
type sample struct {
	iterations   int64
	nsPerOp      float64
	eventsPerRun float64
	bPerOp       float64
	allocsPerOp  float64
}

// parseBench extracts benchmark results from `go test -bench` output,
// grouping repeated runs of the same benchmark (-count=N) under one
// name. Group order follows first appearance.
func parseBench(r io.Reader) ([]string, map[string][]sample, error) {
	var order []string
	groups := make(map[string][]sample)
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... [no tests to run]"
		}
		s := sample{iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchguard: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
			case "B/op":
				s.bPerOp = v
			case "allocs/op":
				s.allocsPerOp = v
			case "events/run":
				s.eventsPerRun = v
			}
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		if _, seen := groups[name]; !seen {
			order = append(order, name)
		}
		groups[name] = append(groups[name], s)
	}
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("benchguard: no benchmark lines found")
	}
	return order, groups, nil
}

// aggregate folds a benchmark's samples into one snapshot entry:
// means across runs, plus the wall-clock standard deviation.
func aggregate(name string, ss []sample) Benchmark {
	b := Benchmark{Name: name, Samples: len(ss)}
	var nsSum float64
	for _, s := range ss {
		b.Iterations += s.iterations
		nsSum += s.nsPerOp
		b.EventsPerRun += s.eventsPerRun
		b.BPerOp += s.bPerOp
		b.AllocsPerOp += s.allocsPerOp
	}
	n := float64(len(ss))
	b.Iterations /= int64(len(ss))
	b.NsPerOp = nsSum / n
	b.EventsPerRun /= n
	b.BPerOp /= n
	b.AllocsPerOp /= n
	if len(ss) > 1 {
		var m2 float64
		for _, s := range ss {
			d := s.nsPerOp - b.NsPerOp
			m2 += d * d
		}
		b.NsStddev = math.Sqrt(m2 / (n - 1))
	}
	return b
}

// cv returns a benchmark's wall-clock coefficient of variation, zero
// when it was recorded from a single run.
func (b Benchmark) cv() float64 {
	if b.NsPerOp <= 0 {
		return 0
	}
	return b.NsStddev / b.NsPerOp
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "snapshot JSON to compare against (empty = no gate)")
		inputPath    = flag.String("input", "-", "go test -bench output to parse (- = stdin)")
		writePath    = flag.String("write", "", "write the parsed results as a new snapshot JSON")
		note         = flag.String("note", "", "note recorded in the written snapshot")
		maxRegress   = flag.Float64("max-regress", 0.20, "tolerated fractional allocs/op regression")
		allocSlack   = flag.Float64("alloc-slack", 1.0, "absolute allocs/op slack on top of the fraction (absorbs one-off warmup allocations in short runs)")
		gateWall     = flag.Bool("gate-wall", false, "also gate wall clock (ns/op) beyond the calibrated variance band")
		wallFloor    = flag.Float64("wall-floor", 0.25, "minimum tolerated fractional ns/op regression (noise floor)")
		wallZ        = flag.Float64("wall-z", 3.0, "variance-band width in standard deviations of the noisier of current/baseline runs")
		wallMinNs    = flag.Float64("wall-min-ns", 50, "skip the wall gate for benchmarks whose baseline mean is below this many ns/op: at single-digit-nanosecond scales the run-to-run stddev is a large fraction of the mean (timer granularity, alignment, frequency scaling), so the 3-sigma band spans the value itself and the gate is pure noise; such benchmarks still gate on allocs/op")
		wallMaxCV    = flag.Float64("wall-max-cv", 0.25, "skip the per-benchmark wall gate when either run's coefficient of variation (ns_stddev/ns_per_op) exceeds this: a stddev rivalling the mean (BENCH_pr6 records DDVMerge at 25.8ns ± 14.1ns) makes any single-bench verdict noise; the skip and its reason are recorded in written snapshots, and -gate-wall-total still bounds the aggregate")
		gateTotal    = flag.Bool("gate-wall-total", false, "gate the summed ns/op of all benchmarks present in both runs against the baseline sum (band = wall-floor): individual benches too noisy for a per-bench verdict still contribute to the total, whose relative scatter is far smaller, so the full quick matrix keeps a wall budget")
	)
	flag.Parse()

	in := os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	order, groups, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	got := make([]Benchmark, 0, len(order))
	for _, name := range order {
		b := aggregate(name, groups[name])
		if c := b.cv(); c > *wallMaxCV {
			b.WallSkip = fmt.Sprintf("noisy: cv %.2f > %.2f", c, *wallMaxCV)
		}
		got = append(got, b)
	}

	if *writePath != "" {
		snap := Snapshot{
			Recorded:   time.Now().UTC().Format("2006-01-02"),
			Go:         runtime.Version(),
			CPUs:       runtime.NumCPU(),
			Note:       *note,
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*writePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %s (%d benchmarks)\n", *writePath, len(got))
	}

	if *baselinePath == "" {
		return
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(err)
	}
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}

	failed := 0
	compared := 0
	var totalCur, totalRef float64
	for _, b := range got {
		ref, ok := baseline[b.Name]
		if !ok {
			fmt.Printf("benchguard: %-44s new benchmark, no baseline (ok)\n", b.Name)
			continue
		}
		compared++
		totalCur += b.NsPerOp
		totalRef += ref.NsPerOp
		limit := ref.AllocsPerOp*(1+*maxRegress) + *allocSlack
		verdict := "ok"
		if b.AllocsPerOp > limit {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("benchguard: %-44s allocs/op %10.1f -> %10.1f (limit %.1f) %s\n",
			b.Name, ref.AllocsPerOp, b.AllocsPerOp, limit, verdict)

		if !*gateWall {
			continue
		}
		if ref.NsPerOp < *wallMinNs {
			fmt.Printf("benchguard: %-44s ns/op     %10.0f -> %10.0f (below %.0fns floor: allocs-only gate)\n",
				b.Name, ref.NsPerOp, b.NsPerOp, *wallMinNs)
			continue
		}
		// A stddev rivalling the mean — in either run — makes the
		// per-bench verdict noise: skip it (visibly, and recorded as
		// wall_skip in written snapshots) rather than gate on scatter.
		// -gate-wall-total still bounds the aggregate below.
		if c := math.Max(b.cv(), ref.cv()); c > *wallMaxCV {
			fmt.Printf("benchguard: %-44s ns/op     %10.0f -> %10.0f (cv %.2f > %.2f: too noisy, allocs-only gate)\n",
				b.Name, ref.NsPerOp, b.NsPerOp, c, *wallMaxCV)
			continue
		}
		// The variance band widens with whichever run — current or
		// baseline — was noisier, never narrows below the floor.
		band := *wallFloor
		if z := *wallZ * math.Max(b.cv(), ref.cv()); z > band {
			band = z
		}
		wallLimit := ref.NsPerOp * (1 + band)
		verdict = "ok"
		if b.NsPerOp > wallLimit {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("benchguard: %-44s ns/op     %10.0f -> %10.0f (limit %.0f, band %.0f%%, n=%d) %s\n",
			b.Name, ref.NsPerOp, b.NsPerOp, wallLimit, band*100, b.Samples, verdict)
	}
	if compared == 0 {
		fatal(fmt.Errorf("benchguard: nothing compared against %s", *baselinePath))
	}
	if *gateTotal && totalRef > 0 {
		limit := totalRef * (1 + *wallFloor)
		verdict := "ok"
		if totalCur > limit {
			verdict = "REGRESSED"
			failed++
		}
		fmt.Printf("benchguard: %-44s ns/op     %10.0f -> %10.0f (limit %.0f, band %.0f%%) %s\n",
			"TOTAL(wall)", totalRef, totalCur, limit, *wallFloor*100, verdict)
	}
	if failed > 0 {
		fatal(fmt.Errorf("benchguard: %d gate(s) regressed beyond tolerance", failed))
	}
	fmt.Printf("benchguard: %d benchmark(s) within budget\n", compared)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
